#include "opt/unparse.h"

#include <functional>

namespace mtcache {

namespace {

using ColNamer = std::function<std::string(int)>;

// Renders a bound expression, mapping column ordinals through `namer`.
std::string RenderExpr(const BoundExpr& expr, const ColNamer& namer) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral:
      return static_cast<const BoundLiteral&>(expr).value.ToSqlLiteral();
    case BoundExprKind::kColumnRef:
      return namer(static_cast<const BoundColumnRef&>(expr).ordinal);
    case BoundExprKind::kParam:
      return static_cast<const BoundParam&>(expr).name;
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(expr);
      return (e.op == UnaryOp::kNot ? "NOT (" : "-(") +
             RenderExpr(*e.operand, namer) + ")";
    }
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      const char* sym = "=";
      switch (e.op) {
        case BinaryOp::kAdd: sym = "+"; break;
        case BinaryOp::kSub: sym = "-"; break;
        case BinaryOp::kMul: sym = "*"; break;
        case BinaryOp::kDiv: sym = "/"; break;
        case BinaryOp::kMod: sym = "%"; break;
        case BinaryOp::kEq: sym = "="; break;
        case BinaryOp::kNe: sym = "<>"; break;
        case BinaryOp::kLt: sym = "<"; break;
        case BinaryOp::kLe: sym = "<="; break;
        case BinaryOp::kGt: sym = ">"; break;
        case BinaryOp::kGe: sym = ">="; break;
        case BinaryOp::kAnd: sym = "AND"; break;
        case BinaryOp::kOr: sym = "OR"; break;
      }
      return "(" + RenderExpr(*e.left, namer) + " " + sym + " " +
             RenderExpr(*e.right, namer) + ")";
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      return "(" + RenderExpr(*e.input, namer) +
             (e.negated ? " NOT LIKE " : " LIKE ") +
             RenderExpr(*e.pattern, namer) + ")";
    }
    case BoundExprKind::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(expr);
      return "(" + RenderExpr(*e.input, namer) +
             (e.negated ? " IS NOT NULL)" : " IS NULL)");
    }
    case BoundExprKind::kFunction: {
      const auto& e = static_cast<const BoundFunction&>(expr);
      const char* name = "COALESCE";
      switch (e.fn) {
        case BuiltinFn::kGetDate: name = "GETDATE"; break;
        case BuiltinFn::kAbs: name = "ABS"; break;
        case BuiltinFn::kLen: name = "LEN"; break;
        case BuiltinFn::kSubstring: name = "SUBSTRING"; break;
        case BuiltinFn::kRound: name = "ROUND"; break;
        case BuiltinFn::kCoalesce: name = "COALESCE"; break;
      }
      std::string out = std::string(name) + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += RenderExpr(*e.args[i], namer);
      }
      out += ")";
      return out;
    }
    case BoundExprKind::kCase: {
      const auto& e = static_cast<const BoundCase&>(expr);
      std::string out = "CASE";
      for (const auto& [when, then] : e.branches) {
        out += " WHEN " + RenderExpr(*when, namer) + " THEN " +
               RenderExpr(*then, namer);
      }
      if (e.else_expr != nullptr) {
        out += " ELSE " + RenderExpr(*e.else_expr, namer);
      }
      out += " END";
      return out;
    }
  }
  return "NULL";
}

const char* AggName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "COUNT";
}

class Unparser {
 public:
  // Produces a SELECT whose output columns are aliased c0..cN-1.
  StatusOr<std::string> Render(const LogicalOp& op) {
    switch (op.kind) {
      case LogicalKind::kGet: {
        const auto& o = static_cast<const LogicalGet&>(op);
        if (o.table.empty()) {
          return Status::NotImplemented("cannot ship a dual scan");
        }
        std::string alias = NextAlias();
        std::string sql = "SELECT ";
        for (int i = 0; i < op.schema.num_columns(); ++i) {
          if (i > 0) sql += ", ";
          sql += alias + "." + op.schema.column(i).name + " AS c" +
                 std::to_string(i);
        }
        sql += " FROM " + o.table + " " + alias;
        return sql;
      }
      case LogicalKind::kFilter: {
        const auto& o = static_cast<const LogicalFilter&>(op);
        MT_ASSIGN_OR_RETURN(std::string child, Render(*op.children[0]));
        std::string alias = NextAlias();
        ColNamer namer = [&](int i) {
          return alias + ".c" + std::to_string(i);
        };
        std::string sql = "SELECT ";
        for (int i = 0; i < op.schema.num_columns(); ++i) {
          if (i > 0) sql += ", ";
          sql += alias + ".c" + std::to_string(i) + " AS c" + std::to_string(i);
        }
        sql += " FROM (" + child + ") " + alias + " WHERE " +
               RenderExpr(*o.predicate, namer);
        return sql;
      }
      case LogicalKind::kProject: {
        const auto& o = static_cast<const LogicalProject&>(op);
        MT_ASSIGN_OR_RETURN(std::string child, Render(*op.children[0]));
        std::string alias = NextAlias();
        ColNamer namer = [&](int i) {
          return alias + ".c" + std::to_string(i);
        };
        std::string sql = "SELECT ";
        for (size_t i = 0; i < o.exprs.size(); ++i) {
          if (i > 0) sql += ", ";
          sql += RenderExpr(*o.exprs[i], namer) + " AS c" + std::to_string(i);
        }
        sql += " FROM (" + child + ") " + alias;
        return sql;
      }
      case LogicalKind::kJoin: {
        const auto& o = static_cast<const LogicalJoin&>(op);
        MT_ASSIGN_OR_RETURN(std::string left, Render(*op.children[0]));
        MT_ASSIGN_OR_RETURN(std::string right, Render(*op.children[1]));
        std::string la = NextAlias();
        std::string ra = NextAlias();
        int lw = op.children[0]->schema.num_columns();
        ColNamer namer = [&](int i) {
          if (i < lw) return la + ".c" + std::to_string(i);
          return ra + ".c" + std::to_string(i - lw);
        };
        std::string sql = "SELECT ";
        for (int i = 0; i < op.schema.num_columns(); ++i) {
          if (i > 0) sql += ", ";
          sql += namer(i) + " AS c" + std::to_string(i);
        }
        sql += " FROM (" + left + ") " + la;
        sql += o.join_kind == JoinKind::kInner ? " JOIN (" : " LEFT OUTER JOIN (";
        sql += right + ") " + ra + " ON ";
        sql += o.condition != nullptr ? RenderExpr(*o.condition, namer)
                                      : std::string("1 = 1");
        return sql;
      }
      case LogicalKind::kAggregate: {
        const auto& o = static_cast<const LogicalAggregate&>(op);
        MT_ASSIGN_OR_RETURN(std::string child, Render(*op.children[0]));
        std::string alias = NextAlias();
        ColNamer namer = [&](int i) {
          return alias + ".c" + std::to_string(i);
        };
        std::string sql = "SELECT ";
        int out = 0;
        std::string group_clause;
        for (const auto& g : o.group_by) {
          if (out > 0) sql += ", ";
          std::string rendered = RenderExpr(*g, namer);
          sql += rendered + " AS c" + std::to_string(out++);
          if (!group_clause.empty()) group_clause += ", ";
          group_clause += rendered;
        }
        for (const auto& a : o.aggs) {
          if (out > 0) sql += ", ";
          sql += std::string(AggName(a.func)) + "(";
          sql += a.func == AggFunc::kCountStar ? "*" : RenderExpr(*a.arg, namer);
          sql += ") AS c" + std::to_string(out++);
        }
        sql += " FROM (" + child + ") " + alias;
        if (!group_clause.empty()) sql += " GROUP BY " + group_clause;
        return sql;
      }
      case LogicalKind::kSort: {
        const auto& o = static_cast<const LogicalSort&>(op);
        MT_ASSIGN_OR_RETURN(std::string child, Render(*op.children[0]));
        std::string alias = NextAlias();
        ColNamer namer = [&](int i) {
          return alias + ".c" + std::to_string(i);
        };
        std::string sql = "SELECT ";
        for (int i = 0; i < op.schema.num_columns(); ++i) {
          if (i > 0) sql += ", ";
          sql += namer(i) + " AS c" + std::to_string(i);
        }
        sql += " FROM (" + child + ") " + alias + " ORDER BY ";
        for (size_t i = 0; i < o.keys.size(); ++i) {
          if (i > 0) sql += ", ";
          sql += RenderExpr(*o.keys[i].expr, namer);
          if (o.keys[i].desc) sql += " DESC";
        }
        return sql;
      }
      case LogicalKind::kLimit: {
        const auto& o = static_cast<const LogicalLimit&>(op);
        // TOP binds tighter than ORDER BY in our dialect: merge with a Sort
        // child so "SELECT TOP n ... ORDER BY" round-trips.
        const LogicalOp* child = op.children[0].get();
        if (child->kind == LogicalKind::kSort) {
          const auto& sort = static_cast<const LogicalSort&>(*child);
          MT_ASSIGN_OR_RETURN(std::string inner, Render(*child->children[0]));
          std::string alias = NextAlias();
          ColNamer namer = [&](int i) {
            return alias + ".c" + std::to_string(i);
          };
          std::string sql = "SELECT TOP " + std::to_string(o.limit) + " ";
          for (int i = 0; i < op.schema.num_columns(); ++i) {
            if (i > 0) sql += ", ";
            sql += namer(i) + " AS c" + std::to_string(i);
          }
          sql += " FROM (" + inner + ") " + alias + " ORDER BY ";
          for (size_t i = 0; i < sort.keys.size(); ++i) {
            if (i > 0) sql += ", ";
            sql += RenderExpr(*sort.keys[i].expr, namer);
            if (sort.keys[i].desc) sql += " DESC";
          }
          return sql;
        }
        MT_ASSIGN_OR_RETURN(std::string inner, Render(*child));
        std::string alias = NextAlias();
        std::string sql = "SELECT TOP " + std::to_string(o.limit) + " ";
        for (int i = 0; i < op.schema.num_columns(); ++i) {
          if (i > 0) sql += ", ";
          sql += alias + ".c" + std::to_string(i) + " AS c" + std::to_string(i);
        }
        sql += " FROM (" + inner + ") " + alias;
        return sql;
      }
      case LogicalKind::kDistinct: {
        MT_ASSIGN_OR_RETURN(std::string child, Render(*op.children[0]));
        std::string alias = NextAlias();
        std::string sql = "SELECT DISTINCT ";
        for (int i = 0; i < op.schema.num_columns(); ++i) {
          if (i > 0) sql += ", ";
          sql += alias + ".c" + std::to_string(i) + " AS c" + std::to_string(i);
        }
        sql += " FROM (" + child + ") " + alias;
        return sql;
      }
      default:
        return Status::NotImplemented("operator cannot be shipped as SQL");
    }
  }

 private:
  std::string NextAlias() { return "q" + std::to_string(counter_++); }
  int counter_ = 0;
};

}  // namespace

StatusOr<std::string> LogicalToSql(const LogicalOp& op) {
  Unparser unparser;
  return unparser.Render(op);
}

bool IsUnparsable(const LogicalOp& op) {
  switch (op.kind) {
    case LogicalKind::kGet:
      if (static_cast<const LogicalGet&>(op).table.empty()) return false;
      break;
    case LogicalKind::kFilter:
    case LogicalKind::kProject:
    case LogicalKind::kJoin:
    case LogicalKind::kAggregate:
    case LogicalKind::kSort:
    case LogicalKind::kLimit:
    case LogicalKind::kDistinct:
      break;
    default:
      return false;
  }
  for (const auto& child : op.children) {
    if (!IsUnparsable(*child)) return false;
  }
  return true;
}

}  // namespace mtcache
