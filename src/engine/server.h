#ifndef MTCACHE_ENGINE_SERVER_H_
#define MTCACHE_ENGINE_SERVER_H_

#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "binder/binder.h"
#include "common/sim_clock.h"
#include "engine/database.h"
#include "engine/dmv.h"
#include "engine/metrics.h"
#include "engine/session.h"
#include "exec/exec.h"
#include "opt/optimizer.h"
#include "sql/parser.h"

namespace mtcache {

class Server;

/// Name -> server map, the moral equivalent of SQL Server's linked-server
/// registry (§2.1). Remote queries and forwarded DML resolve through it.
///
/// Read-only after setup: every Register call must happen before concurrent
/// execution starts (typically in MTCache::Setup or test fixtures). Freeze()
/// marks the end of setup; a Register after Freeze asserts in debug builds.
/// Lookups are unsynchronized reads, which is safe exactly because the map
/// never changes afterwards.
class LinkedServerRegistry {
 public:
  void Register(const std::string& name, Server* server) {
    assert(!frozen_ && "LinkedServerRegistry is read-only after Freeze()");
    servers_[name] = server;
  }
  Server* Get(const std::string& name) const {
    auto it = servers_.find(name);
    return it == servers_.end() ? nullptr : it->second;
  }
  /// Declares setup finished; further Register calls are programming errors.
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

 private:
  std::map<std::string, Server*> servers_;
  bool frozen_ = false;
};

struct ServerOptions {
  std::string name = "server";
  std::string default_user = "dbo";
  OptimizerOptions optimizer;
  /// When false, every ExecContext this server builds runs the executor in
  /// row-at-a-time mode instead of the default batched mode. The row path is
  /// the semantics oracle: differential tests flip this to prove the batch
  /// path produces byte-identical results.
  bool use_batch_execution = true;
};

/// One SQL server instance: a database, an optimizer, an executor, a plan
/// cache, and stored-procedure support. A backend server stands alone; an
/// MTCache server additionally has `optimizer.backend_server` set and its
/// database configured as a shadow (see src/mtcache).
class Server : public RemoteExecutor, public VirtualTableProvider {
 public:
  explicit Server(ServerOptions options, SimClock* clock = nullptr,
                  LinkedServerRegistry* links = nullptr);

  const std::string& name() const { return options_.name; }
  Database& db() { return db_; }
  SimClock* clock() { return clock_; }
  LinkedServerRegistry* links() { return links_; }
  const OptimizerOptions& optimizer_options() const {
    return options_.optimizer;
  }
  /// Changing optimizer options invalidates all cached plans.
  void set_optimizer_options(const OptimizerOptions& opts);

  /// Executes a script (one or more ';'-separated statements). Returns the
  /// last SELECT's result (or rows_affected of the last DML). Each call runs
  /// on a fresh Session; safe to call from any number of threads at once.
  StatusOr<QueryResult> Execute(const std::string& sql);
  StatusOr<QueryResult> Execute(const std::string& sql, const ParamMap& params,
                                ExecStats* stats);

  /// Executes a script on an existing connection's Session, so local
  /// variables and an open explicit transaction persist across calls. The
  /// caller must not use the same Session from two threads at once; distinct
  /// Sessions may execute concurrently.
  StatusOr<QueryResult> ExecuteOnSession(Session* session,
                                         const std::string& sql,
                                         ExecStats* stats);

  /// Runs `statements` through a fixed pool of `num_workers` worker threads
  /// (see SessionPool) and returns their results in submission order.
  std::vector<StatusOr<QueryResult>> ExecuteConcurrent(
      const std::vector<std::string>& statements, int num_workers);

  /// Executes a script, failing on the first error; results are discarded.
  Status ExecuteScript(const std::string& sql);

  /// Calls a stored procedure with positional arguments. If the procedure
  /// does not exist locally and a backend is linked, the call is forwarded
  /// transparently (§5.2).
  StatusOr<QueryResult> CallProcedure(const std::string& name,
                                      const std::vector<Value>& args,
                                      ExecStats* stats);

  /// Parses + binds + optimizes a single SELECT without executing it.
  StatusOr<OptimizeResult> Explain(const std::string& sql);

  // RemoteExecutor: runs `sql` on the linked server `server_name`, charging
  // its work to stats->remote_cost.
  StatusOr<QueryResult> ExecuteRemote(const std::string& server_name,
                                      const std::string& sql,
                                      const ParamMap& params,
                                      ExecStats* stats) override;

  /// Hook for CREATE CACHED MATERIALIZED VIEW, installed by the MTCache
  /// layer (creating a cached view also creates a replication subscription,
  /// which the engine itself knows nothing about).
  using CachedViewHandler =
      std::function<Status(Server* server, const CreateViewStmt& stmt)>;
  void set_cached_view_handler(CachedViewHandler handler) {
    cached_view_handler_ = std::move(handler);
  }
  /// Hook for DROP of a cached view (must also drop the subscription).
  using CachedViewDropHandler =
      std::function<Status(Server* server, const std::string& view)>;
  void set_cached_view_drop_handler(CachedViewDropHandler handler) {
    cached_view_drop_handler_ = std::move(handler);
  }

  const PlanCacheStats& plan_cache_stats() const {
    return metrics_.plan_cache;
  }
  void InvalidatePlanCache();

  /// Central counter aggregation: plan cache, optimizer decisions, ChoosePlan
  /// branch selection, per-statement rollups, and the query trace ring. The
  /// sys.dm_* DMVs render from here.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // VirtualTableProvider: materializes sys.dm_* rows at scan-open time,
  // applying the scan's pushed-down predicate while rendering.
  StatusOr<std::vector<Row>> VirtualTableRows(
      const std::string& name, const VirtualRowFilter& filter) override;

  /// The server's DMV catalog (names and schemas of the sys.dm_* views),
  /// e.g. for snapshot helpers that enumerate every DMV.
  const DmvCatalog& dmvs() const { return dmvs_; }

  /// Recomputes statistics on all stored tables (after bulk loads).
  void RecomputeStats();

 private:
  struct CachedPlan {
    PhysicalPtr plan;
    Schema schema;
    // Trace metadata, captured once at optimize time.
    std::string label;      // statement text (or a procedure-body marker)
    std::string plan_text;  // PhysicalToString rendering of the plan
    double est_cost = 0;
    bool uses_remote = false;
    bool dynamic_plan = false;
  };
  /// Plans are handed out as shared_ptr-to-const: an executing session keeps
  /// its plan alive even if the cache is invalidated mid-flight (epoch-based
  /// invalidation — the cache drops its reference and bumps the generation;
  /// it never destroys a plan someone is running).
  using CachedPlanPtr = std::shared_ptr<const CachedPlan>;

  struct CompiledProcedure {
    const ProcedureDef* def = nullptr;
    std::vector<StmtPtr> body;  // read-only after compilation
    // Plans for SELECTs inside the body, keyed by statement address. This is
    // what makes dynamic plans pay off: parameterized procedure queries are
    // optimized once and the startup predicates pick the branch per call.
    // Guarded by plan_cache_mu_, like the statement cache.
    std::map<const Stmt*, CachedPlanPtr> plans;
  };

  Status ExecuteStmtList(const std::vector<StmtPtr>& stmts, Session* session,
                         ExecStats* stats, CompiledProcedure* proc);
  Status ExecuteStmt(const Stmt& stmt, Session* session, ExecStats* stats,
                     CompiledProcedure* proc);
  /// `text` is the statement's SQL when known (single-statement ad-hoc
  /// scripts); it doubles as the plan-cache key and the trace label.
  Status ExecSelect(const SelectStmt& stmt, Session* session, ExecStats* stats,
                    CompiledProcedure* proc, const std::string& text = "");
  Status ExecInsert(const InsertStmt& stmt, Session* session, ExecStats* stats);
  Status ExecUpdate(const UpdateStmt& stmt, Session* session, ExecStats* stats);
  Status ExecDelete(const DeleteStmt& stmt, Session* session, ExecStats* stats);
  Status ExecCreateTable(const CreateTableStmt& stmt);
  Status ExecCreateIndex(const CreateIndexStmt& stmt);
  Status ExecCreateView(const CreateViewStmt& stmt, Session* session,
                        ExecStats* stats);
  Status ExecCreateProcedure(const CreateProcedureStmt& stmt);
  Status ExecDrop(const DropStmt& stmt);
  Status ExecGrant(const GrantStmt& stmt);
  Status ExecExplain(const ExplainStmt& stmt, Session* session);
  Status ExecExec(const ExecStmt& stmt, Session* session, ExecStats* stats);
  Status ExecIf(const IfStmt& stmt, Session* session, ExecStats* stats,
                CompiledProcedure* proc);

  /// Forwards a DML statement (rendered back to SQL) to the shadow table's
  /// home backend (§5: "all insert, delete and update requests against a
  /// shadow table are immediately converted to remote inserts, deletes and
  /// updates").
  Status ForwardDml(const TableDef& table, const std::string& sql,
                    Session* session, ExecStats* stats);

  /// Applies one local write plus synchronous maintenance of regular
  /// materialized views defined over the table.
  StatusOr<RowId> InsertRow(StoredTable* table, const Row& row,
                            Transaction* txn, ExecStats* stats);
  Status DeleteRow(StoredTable* table, RowId rid, Transaction* txn,
                   ExecStats* stats);
  Status UpdateRow(StoredTable* table, RowId rid, const Row& new_row,
                   Transaction* txn, ExecStats* stats);

  Status MaintainViews(const TableDef& base, LogRecordType op,
                       const Row& before, const Row& after, Transaction* txn,
                       ExecStats* stats);

  /// Rows of `table` satisfying `where`, using an index when an equality
  /// prefix is available.
  StatusOr<std::vector<RowId>> FindMatchingRows(StoredTable* table,
                                                const BoundExpr* where,
                                                Session* session,
                                                ExecStats* stats);

  /// Returns the plan for `stmt`: a cache hit under a shared lock, or the
  /// result of optimizing outside any lock. Cacheable plans are inserted
  /// under the exclusive lock with insert-or-discard semantics — if another
  /// session optimized the same statement first, or the cache generation
  /// changed (an invalidation ran while we optimized), this session simply
  /// executes its own freshly-optimized plan without caching it. Uncacheable
  /// (freshness-constrained) statements never enter the shared cache.
  StatusOr<CachedPlanPtr> PlanSelect(const SelectStmt& stmt, Session* session,
                                     CompiledProcedure* proc,
                                     const std::string& cache_key);

  StatusOr<CompiledProcedure*> CompileProcedure(const std::string& name);

  /// Copy of the optimizer options taken under the plan-cache lock, so a
  /// concurrent set_optimizer_options never tears the struct mid-read.
  OptimizerOptions SnapshotOptimizerOptions() const;

  // Transaction helpers: returns the session transaction or a fresh
  // auto-commit transaction (committed/aborted by the caller via the guard).
  struct TxnScope {
    Transaction* txn = nullptr;
    std::unique_ptr<Transaction> auto_txn;
    bool auto_commit = false;
  };
  TxnScope BeginScope(Session* session);
  Status EndScope(TxnScope* scope, Status status);

  Binder MakeBinder();
  ExecContext MakeContext(Session* session, ExecStats* stats);

  ServerOptions options_;
  SimClock* clock_;
  LinkedServerRegistry* links_;
  Database db_;
  CachedViewHandler cached_view_handler_;
  CachedViewDropHandler cached_view_drop_handler_;

  /// Guards the two plan caches, the cache generation, and options_.optimizer
  /// (which the optimizer reads per statement and set_optimizer_options may
  /// replace concurrently). Shared on the hit path, exclusive on
  /// insert/invalidate; never held during optimization.
  mutable std::shared_mutex plan_cache_mu_;
  std::map<std::string, CachedPlanPtr> statement_plan_cache_;
  std::map<std::string, CompiledProcedure> procedure_cache_;
  /// Bumped by every invalidation. A session that optimized against an older
  /// generation discards its insert (its view of statistics/options may be
  /// stale), but still executes the plan it holds.
  int64_t plan_cache_generation_ = 0;
  MetricsRegistry metrics_;
  DmvCatalog dmvs_;
};

/// Renders DML ASTs back to SQL text for forwarding to the backend.
std::string InsertToSql(const InsertStmt& stmt);
std::string UpdateToSql(const UpdateStmt& stmt);
std::string DeleteToSql(const DeleteStmt& stmt);

}  // namespace mtcache

#endif  // MTCACHE_ENGINE_SERVER_H_
