#include "engine/database.h"

namespace mtcache {

Status Database::CreateTable(TableDef def) {
  std::string name = def.name;
  bool shadow = def.shadow;
  MT_RETURN_IF_ERROR(catalog_.CreateTable(std::move(def)));
  if (!shadow) {
    TableDef* stored = catalog_.GetTable(name);
    tables_[name] = std::make_unique<StoredTable>(stored, &log_);
  }
  return Status::Ok();
}

Status Database::AttachStorage(const std::string& table) {
  TableDef* def = catalog_.GetTable(table);
  if (def == nullptr) {
    return Status::NotFound("table not found: " + table);
  }
  if (tables_.count(table) > 0) {
    return Status::AlreadyExists("storage already exists for " + table);
  }
  def->shadow = false;
  tables_[table] = std::make_unique<StoredTable>(def, &log_);
  return Status::Ok();
}

Status Database::DropTable(const std::string& table) {
  MT_RETURN_IF_ERROR(catalog_.DropTable(table));
  tables_.erase(table);
  return Status::Ok();
}

StoredTable* Database::GetStoredTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

void Database::RecomputeAllStats() {
  for (auto& [name, table] : tables_) {
    table->RecomputeStats();
  }
}

}  // namespace mtcache
