#ifndef MTCACHE_ENGINE_SESSION_H_
#define MTCACHE_ENGINE_SESSION_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exec/exec.h"
#include "expr/bound_expr.h"
#include "storage/table.h"

namespace mtcache {

class Server;

/// Per-connection execution state: local variables, the open explicit
/// transaction (if any), and the statement result buffer. Each concurrent
/// connection owns exactly one Session; the engine never shares one across
/// threads, which is what keeps result buffers and transaction state
/// race-free without any locking here.
struct Session {
  ParamMap vars;
  std::unique_ptr<Transaction> txn;  // explicit transaction, if open
  QueryResult result;
  bool has_result = false;
  bool return_requested = false;
  /// SET STATISTICS PROFILE ON: SELECTs on this session run under the
  /// per-operator profiler and publish into sys.dm_exec_query_profiles.
  /// Connection-scoped like `vars`, so it survives ResetForBatch.
  bool stats_profile = false;

  /// Clears the per-statement outputs before a new top-level batch; local
  /// variables and an open transaction survive across batches (that is the
  /// point of a connection).
  void ResetForBatch() {
    result = QueryResult();
    has_result = false;
    return_requested = false;
  }
};

/// A fixed pool of worker threads, each owning one Session (one simulated
/// connection) against a single Server. Submitted batches are executed by
/// whichever worker frees up first; per-worker session state (variables,
/// open transactions) persists across the batches that worker happens to
/// run, exactly like statements multiplexed over a connection pool.
class SessionPool {
 public:
  SessionPool(Server* server, int num_workers);
  /// Joins all workers; queued work is drained first.
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Enqueues one SQL batch. The future resolves with the batch's result
  /// once a worker has executed it.
  std::future<StatusOr<QueryResult>> Submit(std::string sql,
                                            ParamMap params = {});

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct Task {
    std::string sql;
    ParamMap params;
    std::promise<StatusOr<QueryResult>> promise;
  };

  void WorkerLoop();

  Server* server_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mtcache

#endif  // MTCACHE_ENGINE_SESSION_H_
