#ifndef MTCACHE_ENGINE_DMV_H_
#define MTCACHE_ENGINE_DMV_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "engine/metrics.h"

namespace mtcache {

/// The dynamic-management-view catalog of one server: eight read-only
/// virtual tables, resolved by the binder under the reserved `sys` qualifier
/// and scanned through the ordinary SeqScan path (SQL Server's sys.dm_*
/// views, scaled to this engine's counters):
///
///   sys.dm_plan_cache          one wide row of plan-cache/optimizer counters
///   sys.dm_exec_query_stats    per-statement-text rollups + p50/p95/p99
///   sys.dm_exec_requests       the trace ring: last N executed statements
///   sys.dm_exec_query_profiles per-operator actuals of profiled queries
///   sys.dm_mtcache_views       per cached/materialized view currency state
///   sys.dm_repl_metrics        replication-pipeline counters (via provider)
///   sys.dm_repl_lag_histogram  commit->apply lag distribution (via provider)
///   sys.dm_os_wait_stats       latch/mutex wait accounting (process-global)
///
/// The defs are owned per-Server so LogicalGet/PhysSeqScan TableDef pointers
/// in cached plans stay valid for the server's lifetime.
///
/// Concurrency: the catalog is fully populated in the constructor and never
/// mutated afterwards — read-only after setup, so concurrent sessions may
/// call Find()/Names() without any locking.
class DmvCatalog {
 public:
  DmvCatalog();

  /// Resolves the bare DMV name as written after `sys.` (e.g.
  /// "dm_plan_cache"). Returns null for unknown names.
  const TableDef* Find(const std::string& name) const;

  /// Bare names in catalog order, for snapshot helpers and smoke tests.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, TableDef> tables_;  // keyed by bare name
};

/// Everything a DMV row producer reads. All pointers are borrowed from the
/// owning Server for the duration of one scan-open.
struct DmvSource {
  const MetricsRegistry* metrics = nullptr;
  const Catalog* catalog = nullptr;  // for dm_mtcache_views
  double now = 0;                    // staleness = now - freshness_time
  int64_t cached_statements = 0;       // ad-hoc statement cache entries
  int64_t cached_procedure_plans = 0;  // plans across compiled procedures
};

/// Materializes the rows of the named DMV (full dotted name, e.g.
/// "sys.dm_plan_cache") from the source snapshot. `filter` is the scan's
/// pushed-down predicate (may be null): it is applied while the rows are
/// being rendered, so a selective query over a large registry (e.g.
/// `... WHERE query_id = ?` against the profile ring) never accumulates the
/// non-matching rows at all.
StatusOr<std::vector<Row>> DmvRows(const std::string& name,
                                   const DmvSource& src,
                                   const VirtualRowFilter& filter);

}  // namespace mtcache

#endif  // MTCACHE_ENGINE_DMV_H_
