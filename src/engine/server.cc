#include "engine/server.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <shared_mutex>

#include "common/string_util.h"
#include "common/trace.h"
#include "common/wait_stats.h"
#include "engine/view_util.h"
#include "opt/cost_model.h"
#include "opt/view_matching.h"

namespace mtcache {

namespace {

// Renders an expression list as SQL.
std::string ExprListToSql(const std::vector<ExprPtr>& exprs) {
  std::string out;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) out += ", ";
    out += ExprToSql(*exprs[i]);
  }
  return out;
}

}  // namespace

std::string InsertToSql(const InsertStmt& stmt) {
  std::string sql = "INSERT INTO " + stmt.table;
  if (!stmt.columns.empty()) {
    sql += " (";
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += stmt.columns[i];
    }
    sql += ")";
  }
  sql += " VALUES ";
  for (size_t r = 0; r < stmt.rows.size(); ++r) {
    if (r > 0) sql += ", ";
    sql += "(" + ExprListToSql(stmt.rows[r]) + ")";
  }
  return sql;
}

std::string UpdateToSql(const UpdateStmt& stmt) {
  std::string sql = "UPDATE " + stmt.table + " SET ";
  for (size_t i = 0; i < stmt.sets.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += stmt.sets[i].first + " = " + ExprToSql(*stmt.sets[i].second);
  }
  if (stmt.where != nullptr) sql += " WHERE " + ExprToSql(*stmt.where);
  return sql;
}

std::string DeleteToSql(const DeleteStmt& stmt) {
  std::string sql = "DELETE FROM " + stmt.table;
  if (stmt.where != nullptr) sql += " WHERE " + ExprToSql(*stmt.where);
  return sql;
}

Server::Server(ServerOptions options, SimClock* clock,
               LinkedServerRegistry* links)
    : options_(std::move(options)), clock_(clock), links_(links),
      db_(options_.name + "_db", clock) {}

void Server::set_optimizer_options(const OptimizerOptions& opts) {
  {
    ExclusiveLatchWait lock(plan_cache_mu_, WaitSite::kPlanCacheExclusive);
    options_.optimizer = opts;
    // Epoch-based invalidation: drop the cache's references and bump the
    // generation. Sessions executing a dropped plan hold their own
    // shared_ptr, so nothing is destroyed out from under them, and a session
    // that is mid-optimization against the old options discards its insert
    // when it sees the generation moved.
    statement_plan_cache_.clear();
    for (auto& [name, proc] : procedure_cache_) proc.plans.clear();
    ++plan_cache_generation_;
  }
  ++metrics_.plan_cache.invalidations;
}

void Server::InvalidatePlanCache() {
  {
    ExclusiveLatchWait lock(plan_cache_mu_, WaitSite::kPlanCacheExclusive);
    statement_plan_cache_.clear();
    for (auto& [name, proc] : procedure_cache_) proc.plans.clear();
    ++plan_cache_generation_;
  }
  ++metrics_.plan_cache.invalidations;
}

OptimizerOptions Server::SnapshotOptimizerOptions() const {
  SharedLatchWait lock(plan_cache_mu_, WaitSite::kPlanCacheShared);
  return options_.optimizer;
}

void Server::RecomputeStats() {
  db_.RecomputeAllStats();
  InvalidatePlanCache();
}

Binder Server::MakeBinder() {
  Binder::LinkedCatalogResolver resolver;
  if (links_ != nullptr) {
    LinkedServerRegistry* links = links_;
    resolver = [links](const std::string& name) -> Catalog* {
      Server* server = links->Get(name);
      return server != nullptr ? &server->db().catalog() : nullptr;
    };
  }
  const DmvCatalog* dmvs = &dmvs_;
  return Binder(&db_.catalog(), options_.default_user, std::move(resolver),
                [dmvs](const std::string& name) { return dmvs->Find(name); });
}

ExecContext Server::MakeContext(Session* session, ExecStats* stats) {
  ExecContext ctx;
  ctx.params = &session->vars;
  ctx.now = db_.Now();
  ctx.storage = &db_;
  ctx.remote = this;
  ctx.stats = stats;
  ctx.virtual_tables = this;
  ctx.branch_stats = &metrics_.chooseplan;
  ctx.use_batch = options_.use_batch_execution;
  return ctx;
}

StatusOr<std::vector<Row>> Server::VirtualTableRows(
    const std::string& name, const VirtualRowFilter& filter) {
  DmvSource src;
  src.metrics = &metrics_;
  src.catalog = &db_.catalog();
  src.now = db_.Now();
  {
    SharedLatchWait lock(plan_cache_mu_, WaitSite::kPlanCacheShared);
    src.cached_statements = static_cast<int64_t>(statement_plan_cache_.size());
    for (const auto& [proc_name, proc] : procedure_cache_) {
      src.cached_procedure_plans += static_cast<int64_t>(proc.plans.size());
    }
  }
  return DmvRows(name, src, filter);
}

Server::TxnScope Server::BeginScope(Session* session) {
  TxnScope scope;
  if (session->txn != nullptr && session->txn->active()) {
    scope.txn = session->txn.get();
    scope.auto_commit = false;
  } else {
    scope.auto_txn = db_.txn_manager().Begin();
    scope.txn = scope.auto_txn.get();
    scope.auto_commit = true;
  }
  return scope;
}

Status Server::EndScope(TxnScope* scope, Status status) {
  if (scope->auto_commit) {
    if (status.ok()) {
      db_.txn_manager().Commit(scope->txn, db_.Now());
    } else {
      db_.txn_manager().Abort(scope->txn);
    }
  }
  return status;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

StatusOr<QueryResult> Server::Execute(const std::string& sql) {
  ExecStats stats;
  return Execute(sql, {}, &stats);
}

StatusOr<QueryResult> Server::Execute(const std::string& sql,
                                      const ParamMap& params,
                                      ExecStats* stats) {
  Session session;
  session.vars = params;
  return ExecuteOnSession(&session, sql, stats);
}

StatusOr<QueryResult> Server::ExecuteOnSession(Session* session,
                                               const std::string& sql,
                                               ExecStats* stats) {
  MT_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, ParseSqlScript(sql));
  session->ResetForBatch();
  // Single-SELECT scripts use the statement plan cache keyed by SQL text.
  if (stmts.size() == 1 && stmts[0]->kind == StmtKind::kSelect) {
    if (stats != nullptr) stats->local_cost += CostModel::kStatementOverhead;
    const auto& select = static_cast<const SelectStmt&>(*stmts[0]);
    MT_RETURN_IF_ERROR(ExecSelect(select, session, stats, nullptr, sql));
    if (session->has_result) return std::move(session->result);
    QueryResult empty;
    return empty;
  }
  Status status = ExecuteStmtList(stmts, session, stats, nullptr);
  if (!status.ok()) return status;
  if (session->has_result) return std::move(session->result);
  QueryResult result;
  result.rows_affected = session->result.rows_affected;
  return result;
}

Status Server::ExecuteScript(const std::string& sql) {
  ExecStats stats;
  auto result = Execute(sql, {}, &stats);
  return result.status();
}

StatusOr<QueryResult> Server::CallProcedure(const std::string& name,
                                            const std::vector<Value>& args,
                                            ExecStats* stats) {
  ExecStmt stmt;
  stmt.procedure = ToLower(name);
  for (const Value& v : args) {
    stmt.args.push_back(std::make_unique<LiteralExpr>(v));
  }
  Session session;
  if (stats != nullptr) stats->local_cost += CostModel::kStatementOverhead;
  MT_RETURN_IF_ERROR(ExecExec(stmt, &session, stats));
  if (session.has_result) return std::move(session.result);
  QueryResult result;
  result.rows_affected = session.result.rows_affected;
  return result;
}

namespace {

// Maps a DML statement onto the SELECT whose plan shows its row access path
// (the read side of the write): `SELECT * FROM t [WHERE ...]`. The returned
// StmtPtr owns the synthesized AST; callers downcast it to SelectStmt.
StatusOr<StmtPtr> SynthesizeAccessPath(const std::string& table,
                                       const Expr* where) {
  std::string sql = "SELECT * FROM " + table;
  if (where != nullptr) sql += " WHERE " + ExprToSql(*where);
  return ParseSql(sql);
}

// Resolves an EXPLAIN target to the SELECT to plan. For DML the access-path
// SELECT is synthesized (owned by `*synthesized`); INSERT ... VALUES has no
// read side, so its target table is scanned plan-less (`select` = null).
StatusOr<const SelectStmt*> ResolveExplainSelect(const Stmt& stmt,
                                                 StmtPtr* synthesized) {
  switch (stmt.kind) {
    case StmtKind::kSelect:
      return static_cast<const SelectStmt*>(&stmt);
    case StmtKind::kInsert: {
      const auto& ins = static_cast<const InsertStmt&>(stmt);
      if (ins.select != nullptr) return ins.select.get();
      return static_cast<const SelectStmt*>(nullptr);
    }
    case StmtKind::kUpdate: {
      const auto& upd = static_cast<const UpdateStmt&>(stmt);
      MT_ASSIGN_OR_RETURN(*synthesized,
                          SynthesizeAccessPath(upd.table, upd.where.get()));
      return static_cast<const SelectStmt*>(synthesized->get());
    }
    case StmtKind::kDelete: {
      const auto& del = static_cast<const DeleteStmt&>(stmt);
      MT_ASSIGN_OR_RETURN(*synthesized,
                          SynthesizeAccessPath(del.table, del.where.get()));
      return static_cast<const SelectStmt*>(synthesized->get());
    }
    default:
      return Status::InvalidArgument(
          "EXPLAIN supports SELECT, INSERT, UPDATE, and DELETE");
  }
}

}  // namespace

StatusOr<OptimizeResult> Server::Explain(const std::string& sql) {
  MT_ASSIGN_OR_RETURN(StmtPtr stmt, ParseSql(sql));
  StmtPtr synthesized;
  MT_ASSIGN_OR_RETURN(const SelectStmt* select,
                      ResolveExplainSelect(*stmt, &synthesized));
  if (select == nullptr) {
    // INSERT ... VALUES: explain the target table's access path so the
    // write-path plan is still inspectable.
    const auto& ins = static_cast<const InsertStmt&>(*stmt);
    MT_ASSIGN_OR_RETURN(synthesized, SynthesizeAccessPath(ins.table, nullptr));
    select = static_cast<const SelectStmt*>(synthesized.get());
  }
  Binder binder = MakeBinder();
  MT_ASSIGN_OR_RETURN(LogicalPtr logical, binder.BindSelect(*select));
  OptimizerOptions opts = SnapshotOptimizerOptions();
  if (select->max_staleness >= 0) {
    opts.max_staleness = select->max_staleness;
    opts.current_time = db_.Now();
  }
  Optimizer optimizer(&db_.catalog(), opts);
  return optimizer.Optimize(*logical);
}

StatusOr<QueryResult> Server::ExecuteRemote(const std::string& server_name,
                                            const std::string& sql,
                                            const ParamMap& params,
                                            ExecStats* stats) {
  if (links_ == nullptr) {
    return Status::InvalidArgument("no linked servers configured");
  }
  Server* target = links_->Get(server_name);
  if (target == nullptr) {
    return Status::NotFound("unknown linked server: " + server_name);
  }
  // One span per backend hop: the gap between this span and its parent's
  // local work is exactly the mid-tier round-trip the paper's §6 measures.
  SpanScope span("remote_roundtrip",
                 TraceRecorder::Global().enabled() ? server_name + ": " + sql
                                                   : std::string());
  ExecStats callee;
  MT_ASSIGN_OR_RETURN(QueryResult result,
                      target->Execute(sql, params, &callee));
  if (stats != nullptr) {
    stats->remote_cost += callee.local_cost + callee.remote_cost;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Statement dispatch
// ---------------------------------------------------------------------------

Status Server::ExecuteStmtList(const std::vector<StmtPtr>& stmts,
                               Session* session, ExecStats* stats,
                               CompiledProcedure* proc) {
  for (const StmtPtr& stmt : stmts) {
    Status status = ExecuteStmt(*stmt, session, stats, proc);
    if (!status.ok()) {
      // An error aborts any open explicit transaction (T-SQL-ish).
      if (session->txn != nullptr && session->txn->active()) {
        db_.txn_manager().Abort(session->txn.get());
        session->txn.reset();
      }
      return status;
    }
    if (session->return_requested) break;
  }
  return Status::Ok();
}

Status Server::ExecuteStmt(const Stmt& stmt, Session* session,
                           ExecStats* stats, CompiledProcedure* proc) {
  // Per-statement engine overhead: parsing/binding/plan-cache lookup and
  // connection protocol work.
  if (stats != nullptr) stats->local_cost += CostModel::kStatementOverhead;
  switch (stmt.kind) {
    case StmtKind::kSelect:
      return ExecSelect(static_cast<const SelectStmt&>(stmt), session, stats,
                        proc);
    case StmtKind::kInsert:
      return ExecInsert(static_cast<const InsertStmt&>(stmt), session, stats);
    case StmtKind::kUpdate:
      return ExecUpdate(static_cast<const UpdateStmt&>(stmt), session, stats);
    case StmtKind::kDelete:
      return ExecDelete(static_cast<const DeleteStmt&>(stmt), session, stats);
    case StmtKind::kCreateTable:
      return ExecCreateTable(static_cast<const CreateTableStmt&>(stmt));
    case StmtKind::kCreateIndex:
      return ExecCreateIndex(static_cast<const CreateIndexStmt&>(stmt));
    case StmtKind::kCreateView:
      return ExecCreateView(static_cast<const CreateViewStmt&>(stmt), session,
                            stats);
    case StmtKind::kCreateProcedure:
      return ExecCreateProcedure(
          static_cast<const CreateProcedureStmt&>(stmt));
    case StmtKind::kDrop:
      return ExecDrop(static_cast<const DropStmt&>(stmt));
    case StmtKind::kGrant:
      return ExecGrant(static_cast<const GrantStmt&>(stmt));
    case StmtKind::kExplain:
      return ExecExplain(static_cast<const ExplainStmt&>(stmt), session);
    case StmtKind::kExec:
      return ExecExec(static_cast<const ExecStmt&>(stmt), session, stats);
    case StmtKind::kDeclare: {
      const auto& declare = static_cast<const DeclareStmt&>(stmt);
      Value init = Value::TypedNull(declare.type);
      if (declare.init != nullptr) {
        Binder binder = MakeBinder();
        MT_ASSIGN_OR_RETURN(BExprPtr bound, binder.BindScalar(*declare.init));
        ExecContext ctx = MakeContext(session, stats);
        MT_ASSIGN_OR_RETURN(init, EvalBound(*bound, nullptr, ctx.Eval()));
      }
      session->vars[declare.var] = std::move(init);
      return Status::Ok();
    }
    case StmtKind::kSetVar: {
      const auto& set = static_cast<const SetVarStmt&>(stmt);
      Binder binder = MakeBinder();
      MT_ASSIGN_OR_RETURN(BExprPtr bound, binder.BindScalar(*set.value));
      ExecContext ctx = MakeContext(session, stats);
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*bound, nullptr, ctx.Eval()));
      session->vars[set.var] = std::move(v);
      return Status::Ok();
    }
    case StmtKind::kSetOption: {
      const auto& set = static_cast<const SetOptionStmt&>(stmt);
      if (set.option == "statistics profile") {
        session->stats_profile = set.on;
        return Status::Ok();
      }
      return Status::InvalidArgument("unknown SET option: " + set.option);
    }
    case StmtKind::kIf:
      return ExecIf(static_cast<const IfStmt&>(stmt), session, stats, proc);
    case StmtKind::kWhile: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      Binder binder = MakeBinder();
      MT_ASSIGN_OR_RETURN(BExprPtr cond, binder.BindScalar(*loop.condition));
      constexpr int kMaxIterations = 1000000;  // runaway-loop backstop
      for (int i = 0; ; ++i) {
        if (i >= kMaxIterations) {
          return Status::Aborted("WHILE exceeded the iteration limit");
        }
        ExecContext ctx = MakeContext(session, stats);
        MT_ASSIGN_OR_RETURN(bool pass,
                            EvalPredicate(*cond, nullptr, ctx.Eval()));
        if (!pass) break;
        MT_RETURN_IF_ERROR(ExecuteStmtList(loop.body, session, stats, proc));
        if (session->return_requested) break;
      }
      return Status::Ok();
    }
    case StmtKind::kReturn:
      session->return_requested = true;
      return Status::Ok();
    case StmtKind::kBeginTxn:
      if (session->txn != nullptr && session->txn->active()) {
        return Status::InvalidArgument("transaction already open");
      }
      session->txn = db_.txn_manager().Begin();
      return Status::Ok();
    case StmtKind::kCommitTxn:
      if (session->txn == nullptr || !session->txn->active()) {
        return Status::InvalidArgument("no open transaction to commit");
      }
      db_.txn_manager().Commit(session->txn.get(), db_.Now());
      session->txn.reset();
      return Status::Ok();
    case StmtKind::kRollbackTxn:
      if (session->txn == nullptr || !session->txn->active()) {
        return Status::InvalidArgument("no open transaction to roll back");
      }
      db_.txn_manager().Abort(session->txn.get());
      session->txn.reset();
      return Status::Ok();
  }
  return Status::Internal("unhandled statement kind");
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

StatusOr<Server::CachedPlanPtr> Server::PlanSelect(
    const SelectStmt& stmt, Session* session, CompiledProcedure* proc,
    const std::string& cache_key) {
  (void)session;
  // Queries with a freshness requirement (§7 extension) are not cacheable:
  // whether a cached view qualifies depends on its staleness *now*.
  bool cacheable = stmt.max_staleness < 0;
  // Procedure-body statements cache by statement identity; ad-hoc statements
  // by SQL text. Lookup runs under the shared lock; many sessions hit the
  // cache in parallel.
  int64_t generation_at_lookup = 0;
  size_t proc_plan_count = 0;
  {
    SpanScope lookup_span("plan_cache_lookup");
    SharedLatchWait lock(plan_cache_mu_, WaitSite::kPlanCacheShared);
    generation_at_lookup = plan_cache_generation_;
    if (cacheable && proc != nullptr) {
      proc_plan_count = proc->plans.size();
      auto it = proc->plans.find(&stmt);
      if (it != proc->plans.end()) {
        ++metrics_.plan_cache.hits;
        return it->second;
      }
    } else if (cacheable && !cache_key.empty()) {
      auto it = statement_plan_cache_.find(cache_key);
      if (it != statement_plan_cache_.end()) {
        ++metrics_.plan_cache.hits;
        return it->second;
      }
    }
  }
  // A statement that was never eligible for the cache is not a miss — count
  // it separately so sys.dm_plan_cache's hit-rate stays meaningful.
  if (cacheable) {
    ++metrics_.plan_cache.misses;
  } else {
    ++metrics_.plan_cache.uncacheable;
  }
  // Optimize with no lock held: optimization is the expensive part, and
  // serializing it behind the cache lock would defeat concurrent sessions.
  // The span covers bind+optimize (and the cheap publish below).
  SpanScope optimize_span(
      "optimize", TraceRecorder::Global().enabled() ? cache_key : std::string());
  Binder binder = MakeBinder();
  MT_ASSIGN_OR_RETURN(LogicalPtr logical, binder.BindSelect(stmt));
  OptimizerOptions opts = SnapshotOptimizerOptions();
  opts.decision_stats = &metrics_.optimizer;
  if (stmt.max_staleness >= 0) {
    opts.max_staleness = stmt.max_staleness;
    opts.current_time = db_.Now();
  }
  Optimizer optimizer(&db_.catalog(), opts);
  MT_ASSIGN_OR_RETURN(OptimizeResult optimized, optimizer.Optimize(*logical));
  CachedPlan cached;
  cached.schema = optimized.plan->schema;
  cached.plan_text = PhysicalToString(*optimized.plan);
  cached.est_cost = optimized.est_cost;
  cached.uses_remote = optimized.uses_remote;
  cached.dynamic_plan = optimized.dynamic_plan;
  if (!cache_key.empty()) {
    cached.label = cache_key;
  } else if (proc != nullptr) {
    cached.label = proc->def->name +
                   (cacheable ? " stmt#" + std::to_string(proc_plan_count)
                              : " stmt (uncached)");
  } else {
    cached.label = "(ad-hoc)";
  }
  cached.plan = std::move(optimized.plan);
  CachedPlanPtr plan = std::make_shared<const CachedPlan>(std::move(cached));
  if (cacheable && (proc != nullptr || !cache_key.empty())) {
    ExclusiveLatchWait lock(plan_cache_mu_, WaitSite::kPlanCacheExclusive);
    if (plan_cache_generation_ != generation_at_lookup) {
      // An invalidation ran while we were optimizing: our plan may reflect
      // pre-invalidation statistics or options. Execute it this once, but
      // do not publish it.
      return plan;
    }
    if (proc != nullptr) {
      // Insert-or-discard: if a concurrent session published first, use its
      // plan and drop ours.
      auto [it, inserted] = proc->plans.emplace(&stmt, plan);
      return it->second;
    }
    auto [it, inserted] = statement_plan_cache_.emplace(cache_key, plan);
    return it->second;
  }
  // Freshness-constrained, or no stable key (multi-statement ad-hoc script):
  // the plan belongs to this execution alone and is never published.
  return plan;
}

Status Server::ExecSelect(const SelectStmt& stmt, Session* session,
                          ExecStats* stats, CompiledProcedure* proc,
                          const std::string& text) {
  // Root span for the whole statement; children (plan_cache_lookup, optimize,
  // execute, remote_roundtrip) attach through the thread-local span stack.
  // The ternaries avoid building detail strings when tracing is off.
  TraceRecorder& tracer = TraceRecorder::Global();
  SpanScope query_span("query", tracer.enabled() ? text : std::string());
  const auto wall_start = std::chrono::steady_clock::now();
  // The shared_ptr keeps the plan alive for the whole execution even if the
  // cache is invalidated (and cleared) concurrently.
  MT_ASSIGN_OR_RETURN(CachedPlanPtr cached,
                      PlanSelect(stmt, session, proc, text));
  // Execute against a private ExecStats so the trace records exactly this
  // statement's cost, then fold it into the caller's totals.
  ExecStats stmt_stats;
  ExecContext ctx = MakeContext(session, &stmt_stats);
  // Profiled when the session asked (SET STATISTICS PROFILE ON) or the
  // server-wide switch is up; off = one relaxed load, no decorators built.
  const bool profiled = session->stats_profile || metrics_.profiling_enabled();
  OperatorProfile profile;
  if (profiled) profile = MakeProfileTree(*cached->plan);
  auto result_or = [&]() -> StatusOr<QueryResult> {
    SpanScope exec_span("execute",
                        tracer.enabled() ? cached->label : std::string());
    return ExecutePlan(*cached->plan, &ctx, profiled ? &profile : nullptr);
  }();
  if (stats != nullptr) stats->Add(stmt_stats);
  if (!result_or.ok()) return result_or.status();
  QueryResult result = result_or.ConsumeValue();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  QueryTrace trace;
  trace.text = cached->label;
  trace.plan = cached->plan_text;
  trace.routing = cached->dynamic_plan ? "dynamic"
                  : cached->uses_remote ? "remote"
                                        : "local";
  trace.est_cost = cached->est_cost;
  trace.measured_cost = stmt_stats.local_cost + stmt_stats.remote_cost;
  trace.stats = stmt_stats;
  trace.rows_returned = static_cast<int64_t>(result.rows.size());
  trace.elapsed_seconds = elapsed;
  const int64_t query_id = metrics_.RecordStatement(std::move(trace));
  if (profiled) {
    QueryProfileRecord rec;
    rec.query_id = query_id;
    rec.text = cached->label;
    rec.total_seconds = elapsed;
    rec.root = std::move(profile);
    metrics_.RecordProfile(std::move(rec));
  }
  if (!stmt.into_vars.empty()) {
    // Scalar assignment: bind the first row's values to the variables. With
    // no rows the variables keep their previous values (T-SQL semantics).
    if (!result.rows.empty()) {
      for (size_t i = 0; i < stmt.into_vars.size(); ++i) {
        if (stmt.into_vars[i].empty()) continue;
        session->vars[stmt.into_vars[i]] = result.rows[0][i];
      }
    }
    return Status::Ok();
  }
  session->result = std::move(result);
  session->has_result = true;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

StatusOr<RowId> Server::InsertRow(StoredTable* table, const Row& row,
                                  Transaction* txn, ExecStats* stats) {
  MT_ASSIGN_OR_RETURN(RowId rid, table->Insert(row, txn));
  if (stats != nullptr) {
    stats->local_cost +=
        CostModel::kInsertRowCost +
        table->def().indexes.size() * CostModel::kIndexMaintRowCost;
  }
  MT_RETURN_IF_ERROR(MaintainViews(table->def(), LogRecordType::kInsert, {},
                                   row, txn, stats));
  return rid;
}

Status Server::DeleteRow(StoredTable* table, RowId rid, Transaction* txn,
                         ExecStats* stats) {
  Row before;
  {
    SharedLatchWait latch(table->latch(), WaitSite::kTableLatchShared);
    before = table->heap().Get(rid);
  }
  MT_RETURN_IF_ERROR(table->Delete(rid, txn));
  if (stats != nullptr) {
    stats->local_cost +=
        CostModel::kDeleteRowCost +
        table->def().indexes.size() * CostModel::kIndexMaintRowCost;
  }
  return MaintainViews(table->def(), LogRecordType::kDelete, before, {}, txn,
                       stats);
}

Status Server::UpdateRow(StoredTable* table, RowId rid, const Row& new_row,
                         Transaction* txn, ExecStats* stats) {
  Row before;
  {
    SharedLatchWait latch(table->latch(), WaitSite::kTableLatchShared);
    before = table->heap().Get(rid);
  }
  MT_RETURN_IF_ERROR(table->Update(rid, new_row, txn));
  if (stats != nullptr) {
    stats->local_cost +=
        CostModel::kUpdateRowCost +
        table->def().indexes.size() * CostModel::kIndexMaintRowCost;
  }
  return MaintainViews(table->def(), LogRecordType::kUpdate, before, new_row,
                       txn, stats);
}

namespace {

// Locates a view row whose primary-key columns equal `key` (values in view
// pk order). Returns -1 when absent. Holds the view's shared latch for the
// lookup; the caller's subsequent mutation re-latches exclusively.
RowId FindViewRowByKey(StoredTable* view, const Row& key) {
  SharedLatchWait latch(view->latch(), WaitSite::kTableLatchShared);
  if (!view->def().indexes.empty() && view->def().indexes[0].unique) {
    for (auto it = view->index(0).SeekGe(key);
         it.Valid() && BPlusTree::ComparePrefix(it.key(), key) == 0;
         it.Next()) {
      if (view->heap().IsLive(it.rowid())) return it.rowid();
    }
    return -1;
  }
  // Fallback: linear scan on pk columns.
  const std::vector<int>& pk = view->def().primary_key;
  for (RowId rid = 0; rid < view->heap().slot_count(); ++rid) {
    if (!view->heap().IsLive(rid)) continue;
    const Row& row = view->heap().Get(rid);
    bool match = true;
    for (size_t i = 0; i < pk.size(); ++i) {
      if (row[pk[i]].Compare(key[i]) != 0) {
        match = false;
        break;
      }
    }
    if (match) return rid;
  }
  return -1;
}

}  // namespace

Status Server::MaintainViews(const TableDef& base, LogRecordType op,
                             const Row& before, const Row& after,
                             Transaction* txn, ExecStats* stats) {
  for (const TableDef* view_def : db_.catalog().ViewsOver(base.name)) {
    // Only regular materialized views are maintained synchronously; cached
    // views are maintained asynchronously by replication (§3).
    if (view_def->kind != RelationKind::kMaterializedView) continue;
    StoredTable* view = db_.GetStoredTable(view_def->name);
    if (view == nullptr) continue;
    const SelectProjectDef& def = *view_def->view_def;

    std::vector<int> pred_cols;
    for (const SimplePredicate& pred : def.predicates) {
      pred_cols.push_back(base.ColumnOrdinal(pred.column));
    }
    auto project = [&](const Row& row) {
      Row out;
      for (const std::string& col : def.columns) {
        out.push_back(row[base.ColumnOrdinal(col)]);
      }
      return out;
    };
    auto key_of = [&](const Row& row) {
      Row key;
      for (int pk_view_ord : view_def->primary_key) {
        int base_ord = base.ColumnOrdinal(def.columns[pk_view_ord]);
        key.push_back(row[base_ord]);
      }
      return key;
    };
    if (stats != nullptr) stats->local_cost += CostModel::kApplyRecordCost;

    bool before_in = op != LogRecordType::kInsert &&
                     def.RowMatches(pred_cols, before);
    bool after_in = op != LogRecordType::kDelete &&
                    def.RowMatches(pred_cols, after);
    if (op == LogRecordType::kInsert) before_in = false;
    if (op == LogRecordType::kDelete) after_in = false;

    if (!before_in && after_in) {
      MT_RETURN_IF_ERROR(view->Insert(project(after), txn).status());
    } else if (before_in && !after_in) {
      RowId rid = FindViewRowByKey(view, key_of(before));
      if (rid >= 0) MT_RETURN_IF_ERROR(view->Delete(rid, txn));
    } else if (before_in && after_in) {
      RowId rid = FindViewRowByKey(view, key_of(before));
      if (rid >= 0) {
        MT_RETURN_IF_ERROR(view->Update(rid, project(after), txn));
      }
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<RowId>> Server::FindMatchingRows(StoredTable* table,
                                                      const BoundExpr* where,
                                                      Session* session,
                                                      ExecStats* stats) {
  ExecContext ctx = MakeContext(session, stats);
  std::vector<RowId> out;

  // Try an index: longest all-equality prefix wins.
  int best_index = -1;
  size_t best_prefix = 0;
  std::vector<SimpleConjunct> simple;
  if (where != nullptr) {
    std::vector<const BoundExpr*> conjuncts;
    CollectConjuncts(*where, &conjuncts);
    for (const BoundExpr* c : conjuncts) {
      SimpleConjunct sc;
      if (ExtractSimpleConjunct(*c, &sc) && sc.op == CompareOp::kEq) {
        simple.push_back(sc);
      }
    }
    const TableDef& def = table->def();
    for (size_t i = 0; i < def.indexes.size(); ++i) {
      size_t prefix = 0;
      for (int col : def.indexes[i].key_columns) {
        bool found = false;
        for (const SimpleConjunct& sc : simple) {
          if (sc.column == col) {
            found = true;
            break;
          }
        }
        if (!found) break;
        ++prefix;
      }
      if (prefix > best_prefix) {
        best_prefix = prefix;
        best_index = static_cast<int>(i);
      }
    }
  }

  EvalContext eval = ctx.Eval();
  auto row_matches = [&](const Row& row) -> StatusOr<bool> {
    if (where == nullptr) return true;
    return EvalPredicate(*where, &row, eval);
  };

  // The scan below holds the table's shared latch while it copies out the
  // matching rids (predicate evaluation is pure, so holding it is safe);
  // the caller mutates the rows afterwards through the self-latching
  // StoredTable entry points.
  if (best_index >= 0) {
    const TableDef& def = table->def();
    Row prefix_key;
    for (size_t k = 0; k < best_prefix; ++k) {
      int col = def.indexes[best_index].key_columns[k];
      for (const SimpleConjunct& sc : simple) {
        if (sc.column != col) continue;
        const auto& bin = static_cast<const BoundBinary&>(*sc.source);
        const BoundExpr* rhs = bin.left->kind == BoundExprKind::kColumnRef
                                   ? bin.right.get()
                                   : bin.left.get();
        MT_ASSIGN_OR_RETURN(Value v, EvalBound(*rhs, nullptr, eval));
        prefix_key.push_back(std::move(v));
        break;
      }
    }
    if (stats != nullptr) stats->local_cost += CostModel::kIndexSeekCost;
    SharedLatchWait latch(table->latch(), WaitSite::kTableLatchShared);
    for (auto it = table->index(best_index).SeekGe(prefix_key);
         it.Valid() && BPlusTree::ComparePrefix(it.key(), prefix_key) == 0;
         it.Next()) {
      if (!table->heap().IsLive(it.rowid())) continue;
      if (stats != nullptr) stats->local_cost += CostModel::kIndexRowCost;
      MT_ASSIGN_OR_RETURN(bool match, row_matches(table->heap().Get(it.rowid())));
      if (match) out.push_back(it.rowid());
    }
    return out;
  }

  SharedLatchWait latch(table->latch(), WaitSite::kTableLatchShared);
  for (RowId rid = 0; rid < table->heap().slot_count(); ++rid) {
    if (!table->heap().IsLive(rid)) continue;
    if (stats != nullptr) stats->local_cost += CostModel::kSeqRowCost;
    MT_ASSIGN_OR_RETURN(bool match, row_matches(table->heap().Get(rid)));
    if (match) out.push_back(rid);
  }
  return out;
}

Status Server::ForwardDml(const TableDef& table, const std::string& sql,
                          Session* session, ExecStats* stats) {
  const std::string backend = !table.home_server.empty()
                                  ? table.home_server
                                  : SnapshotOptimizerOptions().backend_server;
  if (backend.empty() || links_ == nullptr) {
    return Status::InvalidArgument(
        "cannot forward DML: no backend server linked");
  }
  MT_ASSIGN_OR_RETURN(QueryResult result,
                      ExecuteRemote(backend, sql, session->vars, stats));
  session->result.rows_affected = result.rows_affected;
  return Status::Ok();
}

Status Server::ExecInsert(const InsertStmt& stmt, Session* session,
                          ExecStats* stats) {
  if (!stmt.server.empty()) {
    MT_ASSIGN_OR_RETURN(QueryResult result,
                        ExecuteRemote(stmt.server, InsertToSql(stmt),
                                      session->vars, stats));
    session->result.rows_affected = result.rows_affected;
    return Status::Ok();
  }
  TableDef* def = db_.catalog().GetTable(stmt.table);
  if (def != nullptr && def->shadow) {
    return ForwardDml(*def, InsertToSql(stmt), session, stats);
  }
  Binder binder = MakeBinder();
  MT_ASSIGN_OR_RETURN(BoundInsert bound, binder.BindInsert(stmt));
  StoredTable* table = db_.GetStoredTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no storage for table " + stmt.table);
  }

  TxnScope scope = BeginScope(session);
  Status status = Status::Ok();
  int64_t inserted = 0;
  ExecContext ctx = MakeContext(session, stats);

  auto insert_values_row = [&](const std::vector<Value>& values) -> Status {
    Row row(def->schema.num_columns(), Value::Null());
    for (int i = 0; i < def->schema.num_columns(); ++i) {
      row[i] = Value::TypedNull(def->schema.column(i).type);
    }
    for (size_t i = 0; i < bound.column_ordinals.size(); ++i) {
      row[bound.column_ordinals[i]] = values[i];
    }
    for (int i = 0; i < def->schema.num_columns(); ++i) {
      if (!def->schema.column(i).nullable && row[i].is_null()) {
        return Status::InvalidArgument("NULL in NOT NULL column " +
                                       def->schema.column(i).name);
      }
    }
    MT_RETURN_IF_ERROR(InsertRow(table, row, scope.txn, stats).status());
    ++inserted;
    return Status::Ok();
  };

  if (bound.select != nullptr) {
    Optimizer optimizer(&db_.catalog(), SnapshotOptimizerOptions());
    auto optimized = optimizer.Optimize(*bound.select);
    if (!optimized.ok()) {
      status = optimized.status();
    } else {
      auto result = ExecutePlan(*optimized->plan, &ctx);
      if (!result.ok()) {
        status = result.status();
      } else {
        for (const Row& row : result->rows) {
          status = insert_values_row(row);
          if (!status.ok()) break;
        }
      }
    }
  } else {
    for (const auto& expr_row : bound.rows) {
      std::vector<Value> values;
      for (const BExprPtr& e : expr_row) {
        auto v = EvalBound(*e, nullptr, ctx.Eval());
        if (!v.ok()) {
          status = v.status();
          break;
        }
        values.push_back(v.ConsumeValue());
      }
      if (!status.ok()) break;
      status = insert_values_row(values);
      if (!status.ok()) break;
    }
  }
  MT_RETURN_IF_ERROR(EndScope(&scope, status));
  session->result.rows_affected = inserted;
  return Status::Ok();
}

Status Server::ExecUpdate(const UpdateStmt& stmt, Session* session,
                          ExecStats* stats) {
  if (!stmt.server.empty()) {
    MT_ASSIGN_OR_RETURN(QueryResult result,
                        ExecuteRemote(stmt.server, UpdateToSql(stmt),
                                      session->vars, stats));
    session->result.rows_affected = result.rows_affected;
    return Status::Ok();
  }
  TableDef* def = db_.catalog().GetTable(stmt.table);
  if (def != nullptr && def->shadow) {
    return ForwardDml(*def, UpdateToSql(stmt), session, stats);
  }
  Binder binder = MakeBinder();
  MT_ASSIGN_OR_RETURN(BoundUpdate bound, binder.BindUpdate(stmt));
  StoredTable* table = db_.GetStoredTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no storage for table " + stmt.table);
  }

  TxnScope scope = BeginScope(session);
  Status status = Status::Ok();
  int64_t updated = 0;
  ExecContext ctx = MakeContext(session, stats);
  auto rows = FindMatchingRows(table, bound.where.get(), session, stats);
  if (!rows.ok()) {
    status = rows.status();
  } else {
    for (RowId rid : *rows) {
      Row old_row;
      {
        SharedLatchWait latch(table->latch(), WaitSite::kTableLatchShared);
        old_row = table->heap().Get(rid);
      }
      Row new_row = old_row;
      for (const auto& [ord, expr] : bound.sets) {
        auto v = EvalBound(*expr, &old_row, ctx.Eval());
        if (!v.ok()) {
          status = v.status();
          break;
        }
        new_row[ord] = v.ConsumeValue();
      }
      if (!status.ok()) break;
      status = UpdateRow(table, rid, new_row, scope.txn, stats);
      if (!status.ok()) break;
      ++updated;
    }
  }
  MT_RETURN_IF_ERROR(EndScope(&scope, status));
  session->result.rows_affected = updated;
  return Status::Ok();
}

Status Server::ExecDelete(const DeleteStmt& stmt, Session* session,
                          ExecStats* stats) {
  if (!stmt.server.empty()) {
    MT_ASSIGN_OR_RETURN(QueryResult result,
                        ExecuteRemote(stmt.server, DeleteToSql(stmt),
                                      session->vars, stats));
    session->result.rows_affected = result.rows_affected;
    return Status::Ok();
  }
  TableDef* def = db_.catalog().GetTable(stmt.table);
  if (def != nullptr && def->shadow) {
    return ForwardDml(*def, DeleteToSql(stmt), session, stats);
  }
  Binder binder = MakeBinder();
  MT_ASSIGN_OR_RETURN(BoundDelete bound, binder.BindDelete(stmt));
  StoredTable* table = db_.GetStoredTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no storage for table " + stmt.table);
  }

  TxnScope scope = BeginScope(session);
  Status status = Status::Ok();
  int64_t deleted = 0;
  auto rows = FindMatchingRows(table, bound.where.get(), session, stats);
  if (!rows.ok()) {
    status = rows.status();
  } else {
    for (RowId rid : *rows) {
      status = DeleteRow(table, rid, scope.txn, stats);
      if (!status.ok()) break;
      ++deleted;
    }
  }
  MT_RETURN_IF_ERROR(EndScope(&scope, status));
  session->result.rows_affected = deleted;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

Status Server::ExecCreateTable(const CreateTableStmt& stmt) {
  TableDef def;
  def.name = stmt.table;
  std::vector<std::string> pk = stmt.primary_key;
  for (const ColumnDefAst& col : stmt.columns) {
    ColumnInfo info;
    info.name = col.name;
    info.type = col.type;
    info.table = stmt.table;
    info.nullable = !col.not_null;
    def.schema.AddColumn(std::move(info));
    if (col.primary_key) pk.push_back(col.name);
  }
  for (const std::string& col : pk) {
    int ord = -1;
    for (int i = 0; i < def.schema.num_columns(); ++i) {
      if (def.schema.column(i).name == col) {
        ord = i;
        break;
      }
    }
    if (ord < 0) {
      return Status::InvalidArgument("unknown primary key column: " + col);
    }
    def.primary_key.push_back(ord);
  }
  if (!def.primary_key.empty()) {
    def.indexes.push_back(IndexDef{stmt.table + "_pk", def.primary_key, true});
  }
  MT_RETURN_IF_ERROR(db_.CreateTable(std::move(def)));
  InvalidatePlanCache();
  return Status::Ok();
}

Status Server::ExecCreateIndex(const CreateIndexStmt& stmt) {
  TableDef* def = db_.catalog().GetTable(stmt.table);
  if (def == nullptr) {
    return Status::NotFound("table not found: " + stmt.table);
  }
  if (def->FindIndex(stmt.index) >= 0) {
    return Status::AlreadyExists("index already exists: " + stmt.index);
  }
  IndexDef index;
  index.name = stmt.index;
  index.unique = stmt.unique;
  for (const std::string& col : stmt.columns) {
    int ord = def->ColumnOrdinal(col);
    if (ord < 0) {
      return Status::InvalidArgument("unknown column: " + col);
    }
    index.key_columns.push_back(ord);
  }
  def->indexes.push_back(std::move(index));
  StoredTable* table = db_.GetStoredTable(stmt.table);
  if (table != nullptr) table->AddIndex();
  InvalidatePlanCache();
  return Status::Ok();
}

Status Server::ExecCreateView(const CreateViewStmt& stmt, Session* session,
                              ExecStats* stats) {
  if (stmt.cached) {
    if (cached_view_handler_ == nullptr) {
      return Status::InvalidArgument(
          "CREATE CACHED MATERIALIZED VIEW requires an MTCache configuration");
    }
    Status status = cached_view_handler_(this, stmt);
    if (status.ok()) InvalidatePlanCache();
    return status;
  }
  // Regular (synchronously maintained) materialized view.
  if (stmt.select->from.empty()) {
    return Status::InvalidArgument("view must select from a table");
  }
  TableDef* base = db_.catalog().GetTable(stmt.select->from[0].name);
  if (base == nullptr) {
    return Status::NotFound("base table not found: " +
                            stmt.select->from[0].name);
  }
  MT_ASSIGN_OR_RETURN(SelectProjectDef def,
                      BuildSelectProjectDef(*stmt.select, *base));
  MT_ASSIGN_OR_RETURN(
      TableDef view_def,
      MakeViewTableDef(stmt.view, *base, def, RelationKind::kMaterializedView));
  MT_RETURN_IF_ERROR(db_.CreateTable(std::move(view_def)));
  // Populate from the base table.
  StoredTable* base_table = db_.GetStoredTable(base->name);
  StoredTable* view_table = db_.GetStoredTable(stmt.view);
  if (base_table != nullptr && view_table != nullptr) {
    std::vector<int> pred_cols;
    for (const SimplePredicate& pred : def.predicates) {
      pred_cols.push_back(base->ColumnOrdinal(pred.column));
    }
    TxnScope scope = BeginScope(session);
    Status status = Status::Ok();
    // Copy the matching base rows under the base table's shared latch first,
    // so we never hold it while taking the view table's exclusive latch.
    std::vector<Row> projected_rows;
    {
      SharedLatchWait latch(base_table->latch(), WaitSite::kTableLatchShared);
      for (RowId rid = 0; rid < base_table->heap().slot_count(); ++rid) {
        if (!base_table->heap().IsLive(rid)) continue;
        const Row& row = base_table->heap().Get(rid);
        if (stats != nullptr) stats->local_cost += CostModel::kSeqRowCost;
        if (!def.RowMatches(pred_cols, row)) continue;
        Row projected;
        for (const std::string& col : def.columns) {
          projected.push_back(row[base->ColumnOrdinal(col)]);
        }
        projected_rows.push_back(std::move(projected));
      }
    }
    for (const Row& projected : projected_rows) {
      auto inserted = view_table->Insert(projected, scope.txn);
      if (!inserted.ok()) {
        status = inserted.status();
        break;
      }
    }
    MT_RETURN_IF_ERROR(EndScope(&scope, status));
    view_table->RecomputeStats();
  }
  InvalidatePlanCache();
  return Status::Ok();
}

Status Server::ExecCreateProcedure(const CreateProcedureStmt& stmt) {
  // Validate the body parses now, so errors surface at CREATE time.
  MT_ASSIGN_OR_RETURN(std::vector<StmtPtr> body,
                      ParseSqlScript(stmt.body_source));
  (void)body;
  ProcedureDef def;
  def.name = stmt.name;
  def.params = stmt.params;
  def.body_source = stmt.body_source;
  MT_RETURN_IF_ERROR(db_.catalog().CreateProcedure(std::move(def)));
  {
    ExclusiveLatchWait lock(plan_cache_mu_, WaitSite::kPlanCacheExclusive);
    procedure_cache_.erase(stmt.name);
  }
  return Status::Ok();
}

Status Server::ExecDrop(const DropStmt& stmt) {
  switch (stmt.what) {
    case DropKind::kTable: {
      TableDef* def = db_.catalog().GetTable(stmt.name);
      if (def == nullptr) {
        return Status::NotFound("table not found: " + stmt.name);
      }
      if (def->view_def.has_value()) {
        return Status::InvalidArgument(
            stmt.name + " is a view; use DROP MATERIALIZED VIEW");
      }
      if (!db_.catalog().ViewsOver(stmt.name).empty()) {
        return Status::InvalidArgument(
            "cannot drop " + stmt.name + ": materialized views depend on it");
      }
      MT_RETURN_IF_ERROR(db_.DropTable(stmt.name));
      break;
    }
    case DropKind::kView: {
      TableDef* def = db_.catalog().GetTable(stmt.name);
      if (def == nullptr || !def->view_def.has_value()) {
        return Status::NotFound("view not found: " + stmt.name);
      }
      if (def->kind == RelationKind::kCachedView) {
        if (cached_view_drop_handler_ == nullptr) {
          return Status::InvalidArgument(
              "dropping a cached view requires an MTCache configuration");
        }
        MT_RETURN_IF_ERROR(cached_view_drop_handler_(this, stmt.name));
      } else {
        MT_RETURN_IF_ERROR(db_.DropTable(stmt.name));
      }
      break;
    }
    case DropKind::kIndex: {
      TableDef* def = db_.catalog().GetTable(stmt.table);
      if (def == nullptr) {
        return Status::NotFound("table not found: " + stmt.table);
      }
      int ordinal = def->FindIndex(stmt.name);
      if (ordinal < 0) {
        return Status::NotFound("index not found: " + stmt.name);
      }
      def->indexes.erase(def->indexes.begin() + ordinal);
      StoredTable* table = db_.GetStoredTable(stmt.table);
      if (table != nullptr) table->RemoveIndex(ordinal);
      break;
    }
    case DropKind::kProcedure: {
      MT_RETURN_IF_ERROR(db_.catalog().DropProcedure(stmt.name));
      {
        ExclusiveLatchWait lock(plan_cache_mu_, WaitSite::kPlanCacheExclusive);
        procedure_cache_.erase(stmt.name);
      }
      break;
    }
  }
  InvalidatePlanCache();
  return Status::Ok();
}

Status Server::ExecGrant(const GrantStmt& stmt) {
  TableDef* def = db_.catalog().GetTable(stmt.table);
  if (def == nullptr) {
    return Status::NotFound("table not found: " + stmt.table);
  }
  std::set<Privilege> privs;
  for (const std::string& p : stmt.privileges) {
    if (p == "select") {
      privs.insert(Privilege::kSelect);
    } else if (p == "insert") {
      privs.insert(Privilege::kInsert);
    } else if (p == "update") {
      privs.insert(Privilege::kUpdate);
    } else if (p == "delete") {
      privs.insert(Privilege::kDelete);
    } else if (p == "execute") {
      privs.insert(Privilege::kExecute);
    } else if (p == "all") {
      privs = {Privilege::kSelect, Privilege::kInsert, Privilege::kUpdate,
               Privilege::kDelete, Privilege::kExecute};
    } else {
      return Status::InvalidArgument("unknown privilege: " + p);
    }
  }
  if (stmt.grant) {
    def->grants[stmt.user].insert(privs.begin(), privs.end());
  } else {
    auto it = def->grants.find(stmt.user);
    if (it != def->grants.end()) {
      for (Privilege p : privs) it->second.erase(p);
      if (it->second.empty()) def->grants.erase(it);
    }
  }
  InvalidatePlanCache();
  return Status::Ok();
}

namespace {

// Renders one profile node per output row: two-space indent per plan depth,
// actual row counts, per-phase timings (ms), and the memory high-water mark.
void AppendProfileLines(const OperatorProfile& prof, int depth,
                        std::vector<Row>* rows) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += prof.op_name;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                " [est_rows=%.0f actual_rows=%lld opens=%lld next=%lld"
                " open=%.3fms next=%.3fms close=%.3fms mem=%lldB]",
                prof.est_rows, static_cast<long long>(prof.actual_rows),
                static_cast<long long>(prof.opens),
                static_cast<long long>(prof.next_calls),
                prof.open_seconds * 1e3, prof.next_seconds * 1e3,
                prof.close_seconds * 1e3,
                static_cast<long long>(prof.mem_peak_bytes));
  line += buf;
  rows->push_back({Value::String(std::move(line))});
  for (const OperatorProfile& child : prof.children) {
    AppendProfileLines(child, depth + 1, rows);
  }
}

}  // namespace

Status Server::ExecExplain(const ExplainStmt& stmt, Session* session) {
  QueryResult result;
  ColumnInfo col;
  col.name = "plan";
  col.type = TypeId::kString;
  result.schema.AddColumn(std::move(col));

  // Write-side annotation rows for DML targets: forwarding for shadow
  // tables, index maintenance, and view maintenance (synchronous for
  // materialized views, asynchronous via replication for cached views).
  std::vector<std::string> annotations;
  auto annotate_target = [&](const std::string& table,
                             const std::string& forwarded_sql) {
    TableDef* def = db_.catalog().GetTable(table);
    if (def == nullptr) return;
    if (def->shadow) {
      annotations.push_back("forwarded to backend as: " + forwarded_sql);
      return;
    }
    if (!def->indexes.empty()) {
      annotations.push_back("index maintenance: " +
                            std::to_string(def->indexes.size()) +
                            " index(es)");
    }
    for (const TableDef* view : db_.catalog().ViewsOver(table)) {
      annotations.push_back(
          view->kind == RelationKind::kMaterializedView
              ? "maintains view: " + view->name + " (synchronous)"
              : "maintains view: " + view->name + " (via replication)");
    }
  };
  switch (stmt.target->kind) {
    case StmtKind::kInsert: {
      const auto& ins = static_cast<const InsertStmt&>(*stmt.target);
      if (ins.select == nullptr) {
        annotations.push_back("Insert(" + ins.table + ") VALUES: " +
                              std::to_string(ins.rows.size()) + " row(s)");
      } else {
        annotations.push_back("write: Insert(" + ins.table + ") from SELECT");
      }
      annotate_target(ins.table, InsertToSql(ins));
      break;
    }
    case StmtKind::kUpdate: {
      const auto& upd = static_cast<const UpdateStmt&>(*stmt.target);
      annotations.push_back("write: Update(" + upd.table + ", " +
                            std::to_string(upd.sets.size()) + " column(s))");
      annotate_target(upd.table, UpdateToSql(upd));
      break;
    }
    case StmtKind::kDelete: {
      const auto& del = static_cast<const DeleteStmt&>(*stmt.target);
      annotations.push_back("write: Delete(" + del.table + ")");
      annotate_target(del.table, DeleteToSql(del));
      break;
    }
    default:
      break;
  }

  StmtPtr synthesized;
  MT_ASSIGN_OR_RETURN(const SelectStmt* select,
                      ResolveExplainSelect(*stmt.target, &synthesized));
  if (select == nullptr) {
    // INSERT ... VALUES: no read side to plan; the annotations are the plan.
    for (const std::string& note : annotations) {
      result.rows.push_back({Value::String(note)});
    }
    session->result = std::move(result);
    session->has_result = true;
    return Status::Ok();
  }

  Binder binder = MakeBinder();
  MT_ASSIGN_OR_RETURN(LogicalPtr logical, binder.BindSelect(*select));
  OptimizerOptions opts = SnapshotOptimizerOptions();
  if (select->max_staleness >= 0) {
    opts.max_staleness = select->max_staleness;
    opts.current_time = db_.Now();
  }
  Optimizer optimizer(&db_.catalog(), opts);
  MT_ASSIGN_OR_RETURN(OptimizeResult optimized, optimizer.Optimize(*logical));

  if (stmt.analyze) {
    // EXPLAIN ANALYZE: run the plan for real under the profiler and render
    // per-operator actuals. The parser guarantees the target is a SELECT.
    OperatorProfile profile = MakeProfileTree(*optimized.plan);
    ExecStats exec_stats;
    ExecContext ctx = MakeContext(session, &exec_stats);
    SpanScope span("explain_analyze");
    const auto start = std::chrono::steady_clock::now();
    MT_ASSIGN_OR_RETURN(QueryResult executed,
                        ExecutePlan(*optimized.plan, &ctx, &profile));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    AppendProfileLines(profile, 0, &result.rows);
    char summary[160];
    std::snprintf(summary, sizeof(summary),
                  "actual: %lld rows in %.3f ms, estimated cost: %.2f, "
                  "dynamic: %s, remote: %s",
                  static_cast<long long>(executed.rows.size()), elapsed * 1e3,
                  optimized.est_cost, optimized.dynamic_plan ? "yes" : "no",
                  optimized.uses_remote ? "yes" : "no");
    result.rows.push_back({Value::String(summary)});
    QueryProfileRecord rec;
    rec.text = "(explain analyze)";
    rec.total_seconds = elapsed;
    rec.root = std::move(profile);
    metrics_.RecordProfile(std::move(rec));
  } else {
    // One row per plan line, plus a summary row.
    std::string text = PhysicalToString(*optimized.plan);
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      result.rows.push_back({Value::String(text.substr(start, end - start))});
      start = end + 1;
    }
    result.rows.push_back({Value::String(
        "estimated cost: " + std::to_string(optimized.est_cost) +
        ", dynamic: " + (optimized.dynamic_plan ? "yes" : "no") +
        ", remote: " + (optimized.uses_remote ? "yes" : "no"))});
  }
  for (const std::string& note : annotations) {
    result.rows.push_back({Value::String(note)});
  }
  session->result = std::move(result);
  session->has_result = true;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Stored procedures
// ---------------------------------------------------------------------------

StatusOr<Server::CompiledProcedure*> Server::CompileProcedure(
    const std::string& name) {
  // std::map nodes are stable, so the returned pointer survives concurrent
  // insertions of other procedures; entries are only erased by DDL, which is
  // setup-only.
  {
    SharedLatchWait lock(plan_cache_mu_, WaitSite::kPlanCacheShared);
    auto it = procedure_cache_.find(name);
    if (it != procedure_cache_.end()) return &it->second;
  }
  const ProcedureDef* def = db_.catalog().GetProcedure(name);
  if (def == nullptr) {
    return Status::NotFound("procedure not found: " + name);
  }
  // Parse outside the lock; insert-or-discard on a compile race.
  CompiledProcedure proc;
  proc.def = def;
  MT_ASSIGN_OR_RETURN(proc.body, ParseSqlScript(def->body_source));
  ExclusiveLatchWait lock(plan_cache_mu_, WaitSite::kPlanCacheExclusive);
  auto [inserted_it, ok] = procedure_cache_.emplace(name, std::move(proc));
  return &inserted_it->second;
}

Status Server::ExecExec(const ExecStmt& stmt, Session* session,
                        ExecStats* stats) {
  ExecContext ctx = MakeContext(session, stats);
  const ProcedureDef* def = db_.catalog().GetProcedure(stmt.procedure);
  if (def == nullptr) {
    // Transparent forwarding to the backend (§5.2).
    const std::string backend = SnapshotOptimizerOptions().backend_server;
    if (backend.empty() || links_ == nullptr) {
      return Status::NotFound("procedure not found: " + stmt.procedure);
    }
    std::string sql = "EXEC " + stmt.procedure;
    Binder binder = MakeBinder();
    for (size_t i = 0; i < stmt.args.size(); ++i) {
      MT_ASSIGN_OR_RETURN(BExprPtr bound, binder.BindScalar(*stmt.args[i]));
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*bound, nullptr, ctx.Eval()));
      sql += i == 0 ? " " : ", ";
      sql += v.ToSqlLiteral();
    }
    MT_ASSIGN_OR_RETURN(QueryResult result,
                        ExecuteRemote(backend, sql, {}, stats));
    session->result = std::move(result);
    session->has_result = true;
    return Status::Ok();
  }

  MT_ASSIGN_OR_RETURN(CompiledProcedure* proc,
                      CompileProcedure(stmt.procedure));
  if (stmt.args.size() > def->params.size()) {
    return Status::InvalidArgument("too many arguments for procedure " +
                                   stmt.procedure);
  }
  Session proc_session;
  Binder binder = MakeBinder();
  for (size_t i = 0; i < def->params.size(); ++i) {
    Value v = Value::TypedNull(def->params[i].second);
    if (i < stmt.args.size()) {
      MT_ASSIGN_OR_RETURN(BExprPtr bound, binder.BindScalar(*stmt.args[i]));
      MT_ASSIGN_OR_RETURN(v, EvalBound(*bound, nullptr, ctx.Eval()));
    }
    proc_session.vars[def->params[i].first] = std::move(v);
  }
  MT_RETURN_IF_ERROR(ExecuteStmtList(proc->body, &proc_session, stats, proc));
  if (proc_session.txn != nullptr && proc_session.txn->active()) {
    // A procedure must not leak an open transaction.
    db_.txn_manager().Abort(proc_session.txn.get());
    return Status::Aborted("procedure " + stmt.procedure +
                           " left a transaction open");
  }
  if (proc_session.has_result) {
    session->result = std::move(proc_session.result);
    session->has_result = true;
  } else {
    session->result.rows_affected = proc_session.result.rows_affected;
  }
  return Status::Ok();
}

Status Server::ExecIf(const IfStmt& stmt, Session* session, ExecStats* stats,
                      CompiledProcedure* proc) {
  Binder binder = MakeBinder();
  MT_ASSIGN_OR_RETURN(BExprPtr cond, binder.BindScalar(*stmt.condition));
  ExecContext ctx = MakeContext(session, stats);
  MT_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*cond, nullptr, ctx.Eval()));
  const std::vector<StmtPtr>& branch =
      pass ? stmt.then_branch : stmt.else_branch;
  return ExecuteStmtList(branch, session, stats, proc);
}

}  // namespace mtcache
