#include "engine/session.h"

#include <utility>

#include "engine/server.h"

namespace mtcache {

SessionPool::SessionPool(Server* server, int num_workers) : server_(server) {
  if (num_workers < 1) num_workers = 1;
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SessionPool::~SessionPool() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<StatusOr<QueryResult>> SessionPool::Submit(std::string sql,
                                                       ParamMap params) {
  Task task;
  task.sql = std::move(sql);
  task.params = std::move(params);
  std::future<StatusOr<QueryResult>> future = task.promise.get_future();
  {
    std::lock_guard<std::mutex> guard(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void SessionPool::WorkerLoop() {
  Session session;  // this worker's connection state
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> guard(mu_);
      cv_.wait(guard, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Batch-scoped parameters overlay the worker's persistent variables.
    for (const auto& [name, value] : task.params) session.vars[name] = value;
    ExecStats stats;
    task.promise.set_value(
        server_->ExecuteOnSession(&session, task.sql, &stats));
  }
}

std::vector<StatusOr<QueryResult>> Server::ExecuteConcurrent(
    const std::vector<std::string>& statements, int num_workers) {
  std::vector<StatusOr<QueryResult>> results;
  results.reserve(statements.size());
  std::vector<std::future<StatusOr<QueryResult>>> futures;
  futures.reserve(statements.size());
  {
    SessionPool pool(this, num_workers);
    for (const std::string& sql : statements) {
      futures.push_back(pool.Submit(sql));
    }
    for (auto& f : futures) results.push_back(f.get());
  }
  return results;
}

}  // namespace mtcache
