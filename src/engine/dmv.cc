#include "engine/dmv.h"

#include <cmath>

#include "common/wait_stats.h"

namespace mtcache {

namespace {

constexpr const char* kPlanCache = "dm_plan_cache";
constexpr const char* kQueryStats = "dm_exec_query_stats";
constexpr const char* kRequests = "dm_exec_requests";
constexpr const char* kMtcacheViews = "dm_mtcache_views";
constexpr const char* kReplMetrics = "dm_repl_metrics";
constexpr const char* kQueryProfiles = "dm_exec_query_profiles";
constexpr const char* kReplLagHistogram = "dm_repl_lag_histogram";
constexpr const char* kWaitStats = "dm_os_wait_stats";

TableDef MakeDmv(const std::string& bare_name,
                 std::vector<std::pair<std::string, TypeId>> columns) {
  TableDef def;
  def.name = "sys." + bare_name;
  def.virtual_table = true;
  for (auto& [col, type] : columns) {
    ColumnInfo info;
    info.name = col;
    info.type = type;
    info.table = def.name;
    info.nullable = true;
    def.schema.AddColumn(std::move(info));
  }
  // Nominal stats: DMVs are tiny; keep the optimizer from assuming zero rows.
  def.stats.row_count = 1;
  return def;
}

// Applies the scan's pushed-down filter at render time: rejected rows are
// dropped immediately instead of being accumulated into the materialized
// snapshot. A null filter keeps everything.
Status EmitRow(const VirtualRowFilter& filter, Row row,
               std::vector<Row>* rows) {
  if (filter != nullptr) {
    MT_ASSIGN_OR_RETURN(bool keep, filter(row));
    if (!keep) return Status::Ok();
  }
  rows->push_back(std::move(row));
  return Status::Ok();
}

Row PlanCacheRow(const DmvSource& src) {
  const MetricsRegistry& m = *src.metrics;
  return Row{
      Value::Int(m.plan_cache.hits),
      Value::Int(m.plan_cache.misses),
      Value::Int(m.plan_cache.uncacheable),
      Value::Int(m.plan_cache.invalidations),
      Value::Double(m.plan_cache.HitRate()),
      Value::Int(src.cached_statements),
      Value::Int(src.cached_procedure_plans),
      Value::Int(m.optimizer.view_match_hits),
      Value::Int(m.optimizer.view_match_misses),
      Value::Int(m.optimizer.view_match_conditional),
      Value::Int(m.optimizer.dynamic_plans),
      Value::Int(m.optimizer.remote_plans),
      Value::Int(m.chooseplan.guards_evaluated),
      Value::Int(m.chooseplan.local_branches),
      Value::Int(m.chooseplan.remote_branches),
      Value::Int(m.optimizer.currency_checks_passed),
      Value::Int(m.optimizer.currency_fallbacks),
  };
}

StatusOr<std::vector<Row>> QueryStatsRows(const DmvSource& src,
                                          const VirtualRowFilter& filter) {
  std::vector<Row> rows;
  for (const auto& [text, rollup] : src.metrics->SnapshotRollups()) {
    MT_RETURN_IF_ERROR(EmitRow(filter, Row{
        Value::String(text),
        Value::Int(rollup.executions),
        Value::Int(rollup.rows_returned),
        Value::Double(rollup.totals.local_cost),
        Value::Double(rollup.totals.remote_cost),
        Value::Int(rollup.totals.rows_transferred),
        Value::Double(rollup.totals.bytes_transferred),
        Value::Int(rollup.totals.remote_queries),
        Value::Double(rollup.latency.Avg()),
        Value::Double(rollup.latency.Max()),
        Value::Double(rollup.latency.Percentile(0.50)),
        Value::Double(rollup.latency.Percentile(0.95)),
        Value::Double(rollup.latency.Percentile(0.99)),
    }, &rows));
  }
  return rows;
}

StatusOr<std::vector<Row>> RequestsRows(const DmvSource& src,
                                        const VirtualRowFilter& filter) {
  std::vector<Row> rows;
  int64_t dropped = src.metrics->entries_dropped();
  for (const QueryTrace& t : src.metrics->SnapshotTrace()) {
    MT_RETURN_IF_ERROR(EmitRow(filter, Row{
        Value::Int(t.query_id),
        Value::String(t.text),
        Value::String(t.routing),
        Value::Double(t.est_cost),
        Value::Double(t.measured_cost),
        Value::Double(t.stats.local_cost),
        Value::Double(t.stats.remote_cost),
        Value::Int(t.rows_returned),
        Value::Int(t.stats.rows_transferred),
        Value::Int(t.stats.remote_queries),
        Value::Double(t.elapsed_seconds),
        Value::Int(dropped),
        Value::String(t.plan),
    }, &rows));
  }
  return rows;
}

// Flattens one profile tree pre-order. op_id is the pre-order position
// (root = 0), parent_id is the parent's op_id (-1 for the root), so the
// tree can be reassembled from the rows.
Status AppendProfileRows(const QueryProfileRecord& rec,
                         const OperatorProfile& op, int64_t parent_id,
                         int64_t* next_id, const VirtualRowFilter& filter,
                         std::vector<Row>* rows) {
  int64_t op_id = (*next_id)++;
  MT_RETURN_IF_ERROR(EmitRow(filter, Row{
      Value::Int(rec.query_id),
      Value::String(rec.text),
      Value::Int(op_id),
      Value::Int(parent_id),
      Value::String(op.op_name),
      Value::Double(op.est_rows),
      Value::Int(op.actual_rows),
      Value::Int(op.opens),
      Value::Int(op.next_calls),
      Value::Double(op.open_seconds),
      Value::Double(op.next_seconds),
      Value::Double(op.close_seconds),
      Value::Int(op.mem_peak_bytes),
  }, rows));
  for (const OperatorProfile& child : op.children) {
    MT_RETURN_IF_ERROR(
        AppendProfileRows(rec, child, op_id, next_id, filter, rows));
  }
  return Status::Ok();
}

StatusOr<std::vector<Row>> QueryProfilesRows(const DmvSource& src,
                                             const VirtualRowFilter& filter) {
  std::vector<Row> rows;
  for (const QueryProfileRecord& rec : src.metrics->SnapshotProfiles()) {
    int64_t next_id = 0;
    MT_RETURN_IF_ERROR(
        AppendProfileRows(rec, rec.root, -1, &next_id, filter, &rows));
  }
  return rows;
}

StatusOr<std::vector<Row>> MtcacheViewsRows(const DmvSource& src,
                                            const VirtualRowFilter& filter) {
  std::vector<Row> rows;
  for (const std::string& name : src.catalog->TableNames()) {
    const TableDef* def = src.catalog->GetTable(name);
    if (def == nullptr || !def->view_def.has_value()) continue;
    bool cached = def->kind == RelationKind::kCachedView;
    // Staleness only means something for asynchronously maintained cached
    // views with a known currency point.
    double staleness = cached && def->freshness_time >= 0
                           ? src.now - def->freshness_time
                           : -1;
    MT_RETURN_IF_ERROR(EmitRow(filter, Row{
        Value::String(def->name),
        Value::String(cached ? "cached" : "materialized"),
        Value::String(def->view_def->base_table),
        Value::Int(def->subscription_id),
        Value::Double(def->freshness_time),
        Value::Double(staleness),
        Value::Double(def->stats.row_count),
    }, &rows));
  }
  return rows;
}

Row ReplMetricsRow(const DmvSource& src) {
  ReplMetricsSnapshot r = src.metrics->repl_snapshot();
  return Row{
      Value::Int(r.records_scanned),
      Value::Int(r.changes_enqueued),
      Value::Int(r.changes_applied),
      Value::Int(r.txns_applied),
      Value::Int(r.txns_retried),
      Value::Int(r.crashes_injected),
      Value::Int(r.deliveries_dropped),
      Value::Double(r.latency_avg),
      Value::Double(r.latency_max),
      Value::Int(r.latency_count),
      Value::Double(r.latency_p50),
      Value::Double(r.latency_p95),
      Value::Double(r.latency_p99),
  };
}

StatusOr<std::vector<Row>> ReplLagHistogramRows(
    const DmvSource& src, const VirtualRowFilter& filter) {
  ReplMetricsSnapshot r = src.metrics->repl_snapshot();
  std::vector<Row> rows;
  int64_t cumulative = 0;
  for (const ReplLagBucket& b : r.lag_buckets) {
    cumulative += b.count;
    // The overflow bucket's open upper bound is rendered as NULL, not inf:
    // the Value layer treats non-finite doubles as untrustworthy literals.
    MT_RETURN_IF_ERROR(EmitRow(filter, Row{
        Value::Double(b.lo),
        std::isfinite(b.hi) ? Value::Double(b.hi) : Value::Null(),
        Value::Int(b.count),
        Value::Int(cumulative),
    }, &rows));
  }
  return rows;
}

StatusOr<std::vector<Row>> WaitStatsRows(const VirtualRowFilter& filter) {
  const WaitStats& ws = GlobalWaitStats();
  std::vector<Row> rows;
  for (int i = 0; i < static_cast<int>(WaitSite::kCount); ++i) {
    WaitSite site = static_cast<WaitSite>(i);
    const WaitSiteStats& s = ws.at(site);
    MT_RETURN_IF_ERROR(EmitRow(filter, Row{
        Value::String(WaitSiteName(site)),
        Value::Int(s.acquisitions),
        Value::Int(s.contentions),
        Value::Double(s.wait_seconds),
        Value::Double(s.max_wait_seconds),
    }, &rows));
  }
  return rows;
}

}  // namespace

DmvCatalog::DmvCatalog() {
  tables_[kPlanCache] = MakeDmv(
      kPlanCache,
      {{"hits", TypeId::kInt64},
       {"misses", TypeId::kInt64},
       {"uncacheable", TypeId::kInt64},
       {"invalidations", TypeId::kInt64},
       {"hit_rate", TypeId::kDouble},
       {"cached_statements", TypeId::kInt64},
       {"cached_procedure_plans", TypeId::kInt64},
       {"view_match_hits", TypeId::kInt64},
       {"view_match_misses", TypeId::kInt64},
       {"view_match_conditional", TypeId::kInt64},
       {"dynamic_plans", TypeId::kInt64},
       {"remote_plans", TypeId::kInt64},
       {"chooseplan_guards", TypeId::kInt64},
       {"chooseplan_local", TypeId::kInt64},
       {"chooseplan_remote", TypeId::kInt64},
       {"currency_checks_passed", TypeId::kInt64},
       {"currency_fallbacks", TypeId::kInt64}});
  tables_[kQueryStats] = MakeDmv(
      kQueryStats,
      {{"statement", TypeId::kString},
       {"executions", TypeId::kInt64},
       {"rows_returned", TypeId::kInt64},
       {"local_cost", TypeId::kDouble},
       {"remote_cost", TypeId::kDouble},
       {"rows_transferred", TypeId::kInt64},
       {"bytes_transferred", TypeId::kDouble},
       {"remote_queries", TypeId::kInt64},
       {"latency_avg", TypeId::kDouble},
       {"latency_max", TypeId::kDouble},
       {"latency_p50", TypeId::kDouble},
       {"latency_p95", TypeId::kDouble},
       {"latency_p99", TypeId::kDouble}});
  tables_[kRequests] = MakeDmv(
      kRequests,
      {{"query_id", TypeId::kInt64},
       {"statement", TypeId::kString},
       {"routing", TypeId::kString},
       {"est_cost", TypeId::kDouble},
       {"measured_cost", TypeId::kDouble},
       {"local_cost", TypeId::kDouble},
       {"remote_cost", TypeId::kDouble},
       {"rows_returned", TypeId::kInt64},
       {"rows_transferred", TypeId::kInt64},
       {"remote_queries", TypeId::kInt64},
       {"elapsed_seconds", TypeId::kDouble},
       {"entries_dropped", TypeId::kInt64},
       {"plan", TypeId::kString}});
  tables_[kQueryProfiles] = MakeDmv(
      kQueryProfiles,
      {{"query_id", TypeId::kInt64},
       {"statement", TypeId::kString},
       {"op_id", TypeId::kInt64},
       {"parent_id", TypeId::kInt64},
       {"operator", TypeId::kString},
       {"est_rows", TypeId::kDouble},
       {"actual_rows", TypeId::kInt64},
       {"opens", TypeId::kInt64},
       {"next_calls", TypeId::kInt64},
       {"open_seconds", TypeId::kDouble},
       {"next_seconds", TypeId::kDouble},
       {"close_seconds", TypeId::kDouble},
       {"mem_peak_bytes", TypeId::kInt64}});
  tables_[kMtcacheViews] = MakeDmv(
      kMtcacheViews,
      {{"name", TypeId::kString},
       {"kind", TypeId::kString},
       {"base_table", TypeId::kString},
       {"subscription_id", TypeId::kInt64},
       {"freshness_time", TypeId::kDouble},
       {"staleness", TypeId::kDouble},
       {"row_count", TypeId::kDouble}});
  tables_[kReplMetrics] = MakeDmv(
      kReplMetrics,
      {{"records_scanned", TypeId::kInt64},
       {"changes_enqueued", TypeId::kInt64},
       {"changes_applied", TypeId::kInt64},
       {"txns_applied", TypeId::kInt64},
       {"txns_retried", TypeId::kInt64},
       {"crashes_injected", TypeId::kInt64},
       {"deliveries_dropped", TypeId::kInt64},
       {"latency_avg", TypeId::kDouble},
       {"latency_max", TypeId::kDouble},
       {"latency_count", TypeId::kInt64},
       {"latency_p50", TypeId::kDouble},
       {"latency_p95", TypeId::kDouble},
       {"latency_p99", TypeId::kDouble}});
  tables_[kReplLagHistogram] = MakeDmv(
      kReplLagHistogram,
      {{"bucket_lo", TypeId::kDouble},
       {"bucket_hi", TypeId::kDouble},
       {"count", TypeId::kInt64},
       {"cumulative", TypeId::kInt64}});
  tables_[kWaitStats] = MakeDmv(
      kWaitStats,
      {{"wait_type", TypeId::kString},
       {"acquisitions", TypeId::kInt64},
       {"contentions", TypeId::kInt64},
       {"wait_seconds", TypeId::kDouble},
       {"max_wait_seconds", TypeId::kDouble}});
}

const TableDef* DmvCatalog::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> DmvCatalog::Names() const {
  std::vector<std::string> names;
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

StatusOr<std::vector<Row>> DmvRows(const std::string& name,
                                   const DmvSource& src,
                                   const VirtualRowFilter& filter) {
  if (src.metrics == nullptr || src.catalog == nullptr) {
    return Status::Internal("DMV source not wired");
  }
  if (name == std::string("sys.") + kPlanCache) {
    std::vector<Row> rows;
    MT_RETURN_IF_ERROR(EmitRow(filter, PlanCacheRow(src), &rows));
    return rows;
  }
  if (name == std::string("sys.") + kQueryStats) {
    return QueryStatsRows(src, filter);
  }
  if (name == std::string("sys.") + kRequests) {
    return RequestsRows(src, filter);
  }
  if (name == std::string("sys.") + kMtcacheViews) {
    return MtcacheViewsRows(src, filter);
  }
  if (name == std::string("sys.") + kReplMetrics) {
    std::vector<Row> rows;
    MT_RETURN_IF_ERROR(EmitRow(filter, ReplMetricsRow(src), &rows));
    return rows;
  }
  if (name == std::string("sys.") + kQueryProfiles) {
    return QueryProfilesRows(src, filter);
  }
  if (name == std::string("sys.") + kReplLagHistogram) {
    return ReplLagHistogramRows(src, filter);
  }
  if (name == std::string("sys.") + kWaitStats) return WaitStatsRows(filter);
  return Status::NotFound("unknown DMV: " + name);
}

}  // namespace mtcache
