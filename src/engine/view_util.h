#ifndef MTCACHE_ENGINE_VIEW_UTIL_H_
#define MTCACHE_ENGINE_VIEW_UTIL_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"

namespace mtcache {

/// Validates that a view-defining SELECT is a select-project over a single
/// base table with a conjunction of `column op literal` predicates (the only
/// view shape MTCache caches, §4) and lowers it to a SelectProjectDef.
/// `SELECT *` projects every base column.
StatusOr<SelectProjectDef> BuildSelectProjectDef(const SelectStmt& select,
                                                 const TableDef& base);

/// Builds the backing TableDef for a (cached) materialized view: projected
/// base columns, the base primary key mapped through (required — updates and
/// deletes are applied by key), and a unique index on that key.
StatusOr<TableDef> MakeViewTableDef(const std::string& view_name,
                                    const TableDef& base,
                                    const SelectProjectDef& def,
                                    RelationKind kind);

/// Derives shadowed statistics for a view from the base table's statistics
/// and the view predicate's selectivity (the cache server's optimizer costs
/// cached views without ever seeing the backend data, §3).
TableStats DeriveViewStats(const TableDef& base, const SelectProjectDef& def);

}  // namespace mtcache

#endif  // MTCACHE_ENGINE_VIEW_UTIL_H_
