#include "engine/view_util.h"

namespace mtcache {

namespace {

StatusOr<SimplePredicate> LowerPredicate(const Expr& expr) {
  if (expr.kind != ExprKind::kBinary) {
    return Status::InvalidArgument(
        "view predicates must be simple comparisons");
  }
  const auto& bin = static_cast<const BinaryExpr&>(expr);
  CompareOp op;
  switch (bin.op) {
    case BinaryOp::kEq: op = CompareOp::kEq; break;
    case BinaryOp::kNe: op = CompareOp::kNe; break;
    case BinaryOp::kLt: op = CompareOp::kLt; break;
    case BinaryOp::kLe: op = CompareOp::kLe; break;
    case BinaryOp::kGt: op = CompareOp::kGt; break;
    case BinaryOp::kGe: op = CompareOp::kGe; break;
    default:
      return Status::InvalidArgument(
          "view predicates must be comparisons of a column with a literal");
  }
  const Expr* l = bin.left.get();
  const Expr* r = bin.right.get();
  if (l->kind != ExprKind::kColumnRef && r->kind == ExprKind::kColumnRef) {
    std::swap(l, r);
    op = FlipCompareOp(op);
  }
  if (l->kind != ExprKind::kColumnRef || r->kind != ExprKind::kLiteral) {
    return Status::InvalidArgument(
        "view predicates must compare a column with a literal");
  }
  SimplePredicate pred;
  pred.column = static_cast<const ColumnRefExpr&>(*l).column;
  pred.op = op;
  pred.constant = static_cast<const LiteralExpr&>(*r).value;
  return pred;
}

Status CollectPredicates(const Expr& expr, SelectProjectDef* def) {
  if (expr.kind == ExprKind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(expr);
    if (bin.op == BinaryOp::kAnd) {
      MT_RETURN_IF_ERROR(CollectPredicates(*bin.left, def));
      MT_RETURN_IF_ERROR(CollectPredicates(*bin.right, def));
      return Status::Ok();
    }
  }
  MT_ASSIGN_OR_RETURN(SimplePredicate pred, LowerPredicate(expr));
  def->predicates.push_back(std::move(pred));
  return Status::Ok();
}

}  // namespace

StatusOr<SelectProjectDef> BuildSelectProjectDef(const SelectStmt& select,
                                                 const TableDef& base) {
  if (select.from.size() != 1 || !select.joins.empty() ||
      select.from[0].derived != nullptr || !select.from[0].server.empty()) {
    return Status::InvalidArgument(
        "materialized views must select from a single base table");
  }
  if (select.distinct || select.top >= 0 || !select.group_by.empty() ||
      select.having != nullptr || !select.order_by.empty()) {
    return Status::InvalidArgument(
        "materialized views must be plain select-project expressions");
  }
  SelectProjectDef def;
  def.base_table = select.from[0].name;
  for (const SelectItem& item : select.items) {
    if (item.star) {
      for (const ColumnInfo& col : base.schema.columns()) {
        def.columns.push_back(col.name);
      }
      continue;
    }
    if (item.expr->kind != ExprKind::kColumnRef) {
      return Status::InvalidArgument(
          "materialized view select lists may contain only plain columns");
    }
    def.columns.push_back(
        static_cast<const ColumnRefExpr&>(*item.expr).column);
  }
  for (const std::string& col : def.columns) {
    if (base.ColumnOrdinal(col) < 0) {
      return Status::InvalidArgument("unknown column in view: " + col);
    }
  }
  if (select.where != nullptr) {
    MT_RETURN_IF_ERROR(CollectPredicates(*select.where, &def));
    for (const SimplePredicate& pred : def.predicates) {
      if (base.ColumnOrdinal(pred.column) < 0) {
        return Status::InvalidArgument("unknown column in view predicate: " +
                                       pred.column);
      }
    }
  }
  return def;
}

StatusOr<TableDef> MakeViewTableDef(const std::string& view_name,
                                    const TableDef& base,
                                    const SelectProjectDef& def,
                                    RelationKind kind) {
  TableDef view;
  view.name = view_name;
  view.kind = kind;
  view.view_def = def;
  for (const std::string& col : def.columns) {
    int ord = base.ColumnOrdinal(col);
    ColumnInfo info = base.schema.column(ord);
    info.table = view_name;
    view.schema.AddColumn(std::move(info));
  }
  // The base primary key must be fully included: change application (from
  // replication or synchronous maintenance) locates view rows by key.
  for (int pk_col : base.primary_key) {
    const std::string& pk_name = base.schema.column(pk_col).name;
    int in_view = -1;
    for (size_t j = 0; j < def.columns.size(); ++j) {
      if (def.columns[j] == pk_name) {
        in_view = static_cast<int>(j);
        break;
      }
    }
    if (in_view < 0) {
      return Status::InvalidArgument(
          "view must include the base table's primary key column " + pk_name);
    }
    view.primary_key.push_back(in_view);
  }
  if (!view.primary_key.empty()) {
    view.indexes.push_back(IndexDef{view_name + "_pk", view.primary_key, true});
  }
  view.stats = DeriveViewStats(base, def);
  return view;
}

TableStats DeriveViewStats(const TableDef& base, const SelectProjectDef& def) {
  TableStats stats;
  // Selectivity of the view predicate, from the base column statistics.
  double sel = 1.0;
  for (const SimplePredicate& pred : def.predicates) {
    int ord = base.ColumnOrdinal(pred.column);
    if (ord < 0 || ord >= static_cast<int>(base.stats.columns.size())) {
      sel *= 0.3;
      continue;
    }
    const ColumnStats& cs = base.stats.columns[ord];
    double x = pred.constant.AsStatDouble();
    switch (pred.op) {
      case CompareOp::kEq:
        sel *= cs.EqSelectivity();
        break;
      case CompareOp::kNe:
        sel *= 1.0 - cs.EqSelectivity();
        break;
      case CompareOp::kLt:
      case CompareOp::kLe:
        sel *= cs.RangeLeSelectivity(x);
        break;
      case CompareOp::kGt:
      case CompareOp::kGe:
        sel *= cs.RangeGeSelectivity(x);
        break;
    }
  }
  stats.row_count = std::max(base.stats.row_count * sel, 0.0);
  double bytes = 4;
  for (const std::string& col : def.columns) {
    int ord = base.ColumnOrdinal(col);
    if (ord >= 0 && ord < static_cast<int>(base.stats.columns.size())) {
      ColumnStats cs = base.stats.columns[ord];
      cs.ndv = std::min(cs.ndv, std::max(stats.row_count, 1.0));
      stats.columns.push_back(cs);
    } else {
      stats.columns.push_back(ColumnStats{});
    }
    bytes += base.schema.column(ord).type == TypeId::kString ? 24 : 8;
  }
  stats.avg_row_bytes = bytes;
  return stats;
}

}  // namespace mtcache
