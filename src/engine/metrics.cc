#include "engine/metrics.h"

namespace mtcache {

int64_t MetricsRegistry::RecordStatement(QueryTrace trace) {
  std::lock_guard<SpinLock> guard(ring_lock_);
  trace.query_id = next_query_id_++;
  StatementRollup& rollup = rollups_[trace.text];
  ++rollup.executions;
  rollup.totals.Add(trace.stats);
  rollup.rows_returned += trace.rows_returned;
  int64_t id = trace.query_id;
  trace_.push_back(std::move(trace));
  while (trace_.size() > trace_capacity_) trace_.pop_front();
  return id;
}

}  // namespace mtcache
