#include "engine/metrics.h"

namespace mtcache {

int64_t MetricsRegistry::RecordStatement(QueryTrace trace) {
  std::lock_guard<SpinLock> guard(ring_lock_);
  trace.query_id = next_query_id_++;
  StatementRollup& rollup = rollups_[trace.text];
  ++rollup.executions;
  rollup.totals.Add(trace.stats);
  rollup.rows_returned += trace.rows_returned;
  rollup.latency.Record(trace.elapsed_seconds);
  int64_t id = trace.query_id;
  trace_.push_back(std::move(trace));
  while (trace_.size() > trace_capacity_) {
    trace_.pop_front();
    ++entries_dropped_;
  }
  return id;
}

void MetricsRegistry::RecordProfile(QueryProfileRecord profile) {
  std::lock_guard<SpinLock> guard(ring_lock_);
  // EXPLAIN ANALYZE runs outside the statement trace ring and arrives with
  // no id; give it one from the same sequence so profiles stay ordered
  // against dm_exec_requests entries.
  if (profile.query_id == 0) profile.query_id = next_query_id_++;
  profiles_.push_back(std::move(profile));
  while (profiles_.size() > profile_capacity_) profiles_.pop_front();
}

}  // namespace mtcache
