#ifndef MTCACHE_ENGINE_METRICS_H_
#define MTCACHE_ENGINE_METRICS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/atomics.h"
#include "common/histogram.h"
#include "exec/exec.h"
#include "opt/optimizer_stats.h"

namespace mtcache {

/// Plan-cache effectiveness counters (exposed via sys.dm_plan_cache).
/// Relaxed atomics: concurrent sessions bump them lock-free on the hit path.
struct PlanCacheStats {
  RelaxedInt64 hits = 0;
  RelaxedInt64 misses = 0;
  /// Statements that can never be cached (freshness-constrained SELECTs,
  /// max_staleness >= 0). Counted separately so they don't skew the
  /// hit-rate: a plan that was never eligible is not a cache miss.
  RelaxedInt64 uncacheable = 0;
  /// Times the whole cache was flushed (DDL, stats refresh, option change).
  RelaxedInt64 invalidations = 0;

  double HitRate() const {
    int64_t h = hits, m = misses;
    return h + m > 0 ? static_cast<double>(h) / static_cast<double>(h + m)
                     : 0.0;
  }
};

/// Mirror of repl::ReplicationMetrics for sys.dm_repl_metrics. The engine
/// cannot include repl headers (repl depends on engine), so whoever owns the
/// ReplicationSystem installs a provider translating into this struct.
struct ReplLagBucket {
  double lo = 0;       // inclusive lower bound (simulated seconds)
  double hi = 0;       // exclusive upper bound; HUGE_VAL for overflow
  int64_t count = 0;
};

struct ReplMetricsSnapshot {
  int64_t records_scanned = 0;
  int64_t changes_enqueued = 0;
  int64_t changes_applied = 0;
  int64_t txns_applied = 0;
  int64_t txns_retried = 0;
  int64_t crashes_injected = 0;
  int64_t deliveries_dropped = 0;
  double latency_avg = 0;
  double latency_max = 0;
  int64_t latency_count = 0;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;
  /// Non-empty commit→apply lag buckets (sys.dm_repl_lag_histogram).
  std::vector<ReplLagBucket> lag_buckets;
};

/// One entry of the per-query trace ring (sys.dm_exec_requests): the last N
/// statements with their text, chosen plan shape, routing decision, and
/// measured cost.
struct QueryTrace {
  int64_t query_id = 0;       // monotonically increasing per server
  std::string text;           // statement SQL (or a procedure-body marker)
  std::string plan;           // physical plan rendering, computed at plan time
  std::string routing;        // "local" | "remote" | "dynamic"
  double est_cost = 0;        // optimizer estimate for the cached plan
  double measured_cost = 0;   // local + remote cost actually charged
  ExecStats stats;            // full per-statement measurement
  int64_t rows_returned = 0;
  double elapsed_seconds = 0;  // real wall-clock time for the statement
};

/// Per-statement-text rollup (sys.dm_exec_query_stats), aggregated over all
/// executions since server start. Keyed the same way as the trace text.
/// `latency` buckets real elapsed seconds per execution — the p50/p95/p99
/// columns come from here, replacing what used to be avg/max-only scalars.
struct StatementRollup {
  int64_t executions = 0;
  ExecStats totals;
  int64_t rows_returned = 0;
  LogHistogram latency;
};

/// One retained query profile (sys.dm_exec_query_profiles): the full
/// per-operator actuals tree for a profiled execution (EXPLAIN ANALYZE or
/// SET STATISTICS PROFILE ON).
struct QueryProfileRecord {
  int64_t query_id = 0;
  std::string text;
  double total_seconds = 0;
  OperatorProfile root;
};

/// Central per-server counter aggregation: the single place the DMV layer
/// reads. Sub-structs are plain public fields of relaxed atomics — the owning
/// Server (and, via installed pointers, the optimizer and executor) bump them
/// in place from any session thread; the registry itself adds the trace ring
/// and per-statement rollups on top, guarded by a small spinlock (appends are
/// a deque push + map fold, far cheaper than a mutex park).
class MetricsRegistry {
 public:
  PlanCacheStats plan_cache;
  OptimizerDecisionStats optimizer;
  ChoosePlanRuntimeStats chooseplan;

  /// Records one executed SELECT: appends to the trace ring (evicting the
  /// oldest entry past capacity) and folds the measurement into the
  /// per-statement rollup. Assigns and returns the query id. Thread-safe.
  int64_t RecordStatement(QueryTrace trace);

  /// Retains a profiled execution's operator tree in the profile ring
  /// (capacity-bounded, oldest evicted). Thread-safe.
  void RecordProfile(QueryProfileRecord profile);
  std::vector<QueryProfileRecord> SnapshotProfiles() const {
    std::lock_guard<SpinLock> guard(ring_lock_);
    return std::vector<QueryProfileRecord>(profiles_.begin(), profiles_.end());
  }

  /// Server-wide profiling switch (in addition to the per-session
  /// SET STATISTICS PROFILE). One relaxed load on the SELECT path when off.
  bool profiling_enabled() const { return profiling_enabled_.load() != 0; }
  void set_profiling_enabled(bool on) { profiling_enabled_.store(on ? 1 : 0); }

  /// Trace-ring entries silently evicted since startup (capacity overflow
  /// or capacity shrink); surfaced as dm_exec_requests.entries_dropped so
  /// consumers can tell the window truncated.
  int64_t entries_dropped() const { return entries_dropped_.load(); }

  /// Direct references into the ring/rollups — only valid while no other
  /// thread is executing statements (single-threaded tests, post-run
  /// inspection). Concurrent readers must use the Snapshot* copies.
  const std::deque<QueryTrace>& trace() const { return trace_; }
  const std::map<std::string, StatementRollup>& rollups() const {
    return rollups_;
  }

  /// Consistent copies taken under the ring lock: every row in the snapshot
  /// is a fully-recorded statement, never a torn entry. The DMV layer
  /// (sys.dm_exec_requests / dm_exec_query_stats) renders from these.
  std::deque<QueryTrace> SnapshotTrace() const {
    std::lock_guard<SpinLock> guard(ring_lock_);
    return trace_;
  }
  std::map<std::string, StatementRollup> SnapshotRollups() const {
    std::lock_guard<SpinLock> guard(ring_lock_);
    return rollups_;
  }

  /// Trace-ring sizing: how many recent statements dm_exec_requests keeps.
  void set_trace_capacity(size_t n) {
    std::lock_guard<SpinLock> guard(ring_lock_);
    trace_capacity_ = n;
    while (trace_.size() > trace_capacity_) {
      trace_.pop_front();
      ++entries_dropped_;
    }
  }
  size_t trace_capacity() const { return trace_capacity_; }

  using ReplMetricsProvider = std::function<ReplMetricsSnapshot()>;
  /// Installed by the layer owning the ReplicationSystem (MTCache::Setup or
  /// tests); dm_repl_metrics reads through it. Unset = all-zero row.
  void set_repl_metrics_provider(ReplMetricsProvider provider) {
    repl_provider_ = std::move(provider);
  }
  ReplMetricsSnapshot repl_snapshot() const {
    return repl_provider_ ? repl_provider_() : ReplMetricsSnapshot{};
  }

 private:
  // Guards trace_, rollups_, next_query_id_, profiles_.
  mutable SpinLock ring_lock_;
  std::deque<QueryTrace> trace_;
  size_t trace_capacity_ = 32;
  int64_t next_query_id_ = 1;
  std::map<std::string, StatementRollup> rollups_;
  std::deque<QueryProfileRecord> profiles_;
  size_t profile_capacity_ = 16;
  RelaxedInt64 entries_dropped_;
  RelaxedInt64 profiling_enabled_;
  ReplMetricsProvider repl_provider_;
};

}  // namespace mtcache

#endif  // MTCACHE_ENGINE_METRICS_H_
