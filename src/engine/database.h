#ifndef MTCACHE_ENGINE_DATABASE_H_
#define MTCACHE_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/sim_clock.h"
#include "exec/exec.h"
#include "storage/table.h"

namespace mtcache {

/// A database: catalog + stored tables + WAL + transaction manager. On an
/// MTCache server this is the *shadow* database: the catalog is fully
/// populated (cloned from the backend) but only cached-view backing tables
/// hold rows; shadow tables have no storage at all.
class Database : public StorageProvider {
 public:
  /// `clock` provides commit timestamps (may be null for wall-free tests).
  explicit Database(std::string name, SimClock* clock = nullptr)
      : name_(std::move(name)), clock_(clock), txn_mgr_(&log_) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  LogManager& log() { return log_; }
  TransactionManager& txn_manager() { return txn_mgr_; }
  double Now() const { return clock_ != nullptr ? clock_->Now() : 0.0; }

  /// Registers a table in the catalog and (unless it is a shadow) creates
  /// its storage.
  Status CreateTable(TableDef def);

  /// Creates storage for an already-cataloged table (used when a shadow
  /// table definition is materialized as a cached view's backing store).
  Status AttachStorage(const std::string& table);

  Status DropTable(const std::string& table);

  // StorageProvider: returns null for shadow tables and unknown names.
  StoredTable* GetStoredTable(const std::string& name) override;

  /// Recomputes statistics for every stored table (and leaves shadowed
  /// statistics on shadow tables untouched).
  void RecomputeAllStats();

 private:
  std::string name_;
  SimClock* clock_;
  Catalog catalog_;
  LogManager log_;
  TransactionManager txn_mgr_;
  std::map<std::string, std::unique_ptr<StoredTable>> tables_;
};

}  // namespace mtcache

#endif  // MTCACHE_ENGINE_DATABASE_H_
