#ifndef MTCACHE_TYPES_VALUE_H_
#define MTCACHE_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mtcache {

/// SQL data types supported by the engine. Dates/timestamps are stored as
/// kInt64 (seconds since epoch); TPC-W needs no finer granularity.
enum class TypeId : uint8_t {
  kNull = 0,   // only used for untyped NULL literals
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// Name of a type for error messages and SHOW-style output.
const char* TypeName(TypeId type);

/// A single SQL value: a tagged union over the supported types plus NULL.
/// Values are small, copyable, and totally ordered within a type (NULL sorts
/// first, as in an index key). Cross numeric-type comparison (int vs double)
/// is supported; other cross-type comparison is a caller bug guarded by the
/// binder's type checking.
class Value {
 public:
  /// Constructs SQL NULL (of unknown type).
  Value() : type_(TypeId::kNull), is_null_(true), i_(0), d_(0) {}

  static Value Null() { return Value(); }
  static Value TypedNull(TypeId type) {
    Value v;
    v.type_ = type;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type_ = TypeId::kBool;
    v.is_null_ = false;
    v.i_ = b ? 1 : 0;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = TypeId::kInt64;
    v.is_null_ = false;
    v.i_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = TypeId::kDouble;
    v.is_null_ = false;
    v.d_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = TypeId::kString;
    v.is_null_ = false;
    v.s_ = std::move(s);
    return v;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return is_null_; }

  bool AsBool() const { return i_ != 0; }
  int64_t AsInt() const { return i_; }
  double AsDouble() const {
    return type_ == TypeId::kDouble ? d_ : static_cast<double>(i_);
  }
  const std::string& AsString() const { return s_; }

  /// Three-way comparison: -1, 0, +1. NULL compares equal to NULL and less
  /// than any non-NULL (index-key ordering; SQL ternary logic is handled in
  /// expression evaluation, not here).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Approximate in-memory/wire size in bytes, used by the DataTransfer cost
  /// model (§5: transfer cost is proportional to data volume).
  double SizeBytes() const;

  /// Numeric interpretation for statistics (histogram buckets). Strings hash
  /// to a stable small double; NULL returns 0.
  double AsStatDouble() const;

  /// Human/SQL rendering; strings come back quoted so the output can be
  /// re-parsed (used by the remote-SQL unparser).
  std::string ToSqlLiteral() const;
  /// Unquoted rendering for result tables.
  std::string ToString() const;

  /// Stable hash for hash joins / aggregation / DISTINCT.
  size_t Hash() const;

 private:
  TypeId type_;
  bool is_null_ = true;
  int64_t i_ = 0;
  double d_ = 0;
  std::string s_;
};

/// A tuple of values. Rows flow between operators by value; the row widths in
/// this system are small.
using Row = std::vector<Value>;

/// Hash of a full key (composite). Used by hash-based operators.
size_t HashRow(const Row& row);

/// Approximate byte size of a row for transfer costing.
double RowSizeBytes(const Row& row);

}  // namespace mtcache

#endif  // MTCACHE_TYPES_VALUE_H_
