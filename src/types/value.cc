#include "types/value.h"

#include <cstdio>
#include <cstdlib>
#include <functional>

namespace mtcache {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return "null";
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt64:
      return "bigint";
    case TypeId::kDouble:
      return "float";
    case TypeId::kString:
      return "varchar";
  }
  return "unknown";
}

int Value::Compare(const Value& other) const {
  if (is_null_ && other.is_null_) return 0;
  if (is_null_) return -1;
  if (other.is_null_) return 1;
  // Numeric types compare by value across int/double.
  bool numeric_a = type_ == TypeId::kInt64 || type_ == TypeId::kDouble ||
                   type_ == TypeId::kBool;
  bool numeric_b = other.type_ == TypeId::kInt64 ||
                   other.type_ == TypeId::kDouble ||
                   other.type_ == TypeId::kBool;
  if (numeric_a && numeric_b) {
    if (type_ == TypeId::kInt64 && other.type_ == TypeId::kInt64) {
      if (i_ < other.i_) return -1;
      if (i_ > other.i_) return 1;
      return 0;
    }
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type_ == TypeId::kString && other.type_ == TypeId::kString) {
    int c = s_.compare(other.s_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Mixed incomparable types: order by type id to keep a total order.
  return type_ < other.type_ ? -1 : (type_ > other.type_ ? 1 : 0);
}

double Value::SizeBytes() const {
  if (is_null_) return 1;
  switch (type_) {
    case TypeId::kNull:
      return 1;
    case TypeId::kBool:
      return 1;
    case TypeId::kInt64:
      return 8;
    case TypeId::kDouble:
      return 8;
    case TypeId::kString:
      return 4 + static_cast<double>(s_.size());
  }
  return 8;
}

double Value::AsStatDouble() const {
  if (is_null_) return 0;
  switch (type_) {
    case TypeId::kNull:
      return 0;
    case TypeId::kBool:
    case TypeId::kInt64:
      return static_cast<double>(i_);
    case TypeId::kDouble:
      return d_;
    case TypeId::kString: {
      // Order-preserving-ish projection of the first few characters, so range
      // selectivity on strings is at least monotone.
      double x = 0;
      double scale = 1.0;
      for (size_t i = 0; i < s_.size() && i < 8; ++i) {
        scale /= 256.0;
        x += static_cast<unsigned char>(s_[i]) * scale;
      }
      return x;
    }
  }
  return 0;
}

std::string Value::ToSqlLiteral() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return i_ ? "TRUE" : "FALSE";
    case TypeId::kInt64:
      return std::to_string(i_);
    case TypeId::kDouble: {
      // Shortest decimal rendering that parses back to exactly this double.
      // std::to_string's fixed 6 digits truncates (0.1234567891 -> 0.123457),
      // which corrupts literals round-tripped through unparse -> parse for
      // remote forwarding. %.17g always round-trips; prefer fewer digits
      // when they already do.
      char buf[40];
      for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, d_);
        if (std::strtod(buf, nullptr) == d_) break;
      }
      std::string s = buf;
      // Keep the literal float-typed on re-parse: "1e+30" and "0.5" lex as
      // floats, a bare "4" would lex as an int.
      if (s.find_first_of(".eE") == std::string::npos &&
          s.find_first_of("0123456789") != std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case TypeId::kString: {
      std::string out = "'";
      for (char c : s_) {
        if (c == '\'') out += "''";
        else out.push_back(c);
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  if (type_ == TypeId::kString) return s_;
  return ToSqlLiteral();
}

size_t Value::Hash() const {
  if (is_null_) return 0x9e3779b9;
  switch (type_) {
    case TypeId::kNull:
      return 0x9e3779b9;
    case TypeId::kBool:
    case TypeId::kInt64:
      return std::hash<int64_t>()(i_);
    case TypeId::kDouble: {
      // Hash doubles that are whole numbers like the equal int (joins may
      // compare int columns to double expressions).
      double d = d_;
      int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) return std::hash<int64_t>()(i);
      return std::hash<double>()(d);
    }
    case TypeId::kString:
      return std::hash<std::string>()(s_);
  }
  return 0;
}

size_t HashRow(const Row& row) {
  size_t h = 1469598103934665603ULL;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

double RowSizeBytes(const Row& row) {
  double total = 4;  // per-row header
  for (const Value& v : row) total += v.SizeBytes();
  return total;
}

}  // namespace mtcache
