#include "types/schema.h"

namespace mtcache {

int Schema::FindColumn(const std::string& name,
                       const std::string& qualifier) const {
  int found = -1;
  for (int i = 0; i < num_columns(); ++i) {
    const ColumnInfo& c = columns_[i];
    if (c.name != name) continue;
    if (!qualifier.empty() && c.table != qualifier) continue;
    if (found >= 0) return -2;  // ambiguous
    found = i;
  }
  return found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<ColumnInfo> cols = left.columns();
  for (const ColumnInfo& c : right.columns()) cols.push_back(c);
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    if (!columns_[i].table.empty()) {
      out += columns_[i].table;
      out += ".";
    }
    out += columns_[i].name;
    out += " ";
    out += TypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace mtcache
