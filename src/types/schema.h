#ifndef MTCACHE_TYPES_SCHEMA_H_
#define MTCACHE_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace mtcache {

/// One output column: a (possibly qualified) name and a type. `table` is the
/// binding qualifier (table alias) when known; intermediate operators may
/// leave it empty.
struct ColumnInfo {
  std::string name;
  TypeId type = TypeId::kNull;
  std::string table;  // qualifier / alias, lower-cased; may be empty
  bool nullable = true;
};

/// Ordered list of columns describing a row shape flowing through the system
/// (table rows, operator outputs, query results).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnInfo> columns)
      : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnInfo& column(int i) const { return columns_[i]; }
  const std::vector<ColumnInfo>& columns() const { return columns_; }

  void AddColumn(ColumnInfo col) { columns_.push_back(std::move(col)); }

  /// Finds a column by name (and optional qualifier). Returns the ordinal or
  /// -1 if not found, -2 if ambiguous. Names must already be lower-cased.
  int FindColumn(const std::string& name, const std::string& qualifier) const;

  /// Concatenation for join outputs: left columns then right columns.
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<ColumnInfo> columns_;
};

}  // namespace mtcache

#endif  // MTCACHE_TYPES_SCHEMA_H_
